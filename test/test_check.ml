(* Oracle unit tests: hand-built invalid schedules must each trip the
   matching checker, clean ones must pass, and the telemetry / driver
   integration points must round-trip. *)

open Sched_model
module Oracle = Sched_check.Oracle
module Violation = Sched_check.Violation
module Check_obs = Sched_check.Check_obs

let seg job machine start stop speed = { Schedule.job; machine; start; stop; speed }

let completed machine start speed finish =
  Outcome.Completed { Outcome.machine; start; speed; finish }

let rejected ?assigned_to ?(was_running = false) time =
  Outcome.Rejected { Outcome.time; assigned_to; was_running }

(* Hand-build a schedule: finalize only demands outcome coverage, so tests
   can lay down arbitrarily broken segment lists. *)
let build inst segments outcomes =
  let b = Schedule.builder inst in
  List.iter (Schedule.add_segment b) segments;
  List.iter (fun (id, o) -> Schedule.set_outcome b id o) outcomes;
  Schedule.finalize b

let has kind vs = List.exists (fun v -> v.Violation.check = kind) vs

let check_has name kind vs =
  if not (has kind vs) then
    Alcotest.failf "%s: expected a %s violation, got %s" name (Violation.check_name kind)
      (if vs = [] then "a clean report" else Oracle.report vs)

let check_clean name vs =
  if vs <> [] then Alcotest.failf "%s: expected clean, got %s" name (Oracle.report vs)

(* A correct one-job schedule passes every structural checker. *)
let test_clean () =
  let inst = Test_util.instance ~machines:1 [ (0., [| 2. |]) ] in
  let s = build inst [ seg 0 0 0. 2. 1. ] [ (0, completed 0 0. 1. 2.) ] in
  check_clean "one-job schedule" (Oracle.structural s)

let test_overlap () =
  let inst = Test_util.instance ~machines:1 [ (0., [| 2. |]); (0., [| 2. |]) ] in
  let s =
    build inst
      [ seg 0 0 0. 2. 1.; seg 1 0 1. 3. 1. ]
      [ (0, completed 0 0. 1. 2.); (1, completed 0 1. 1. 3.) ]
  in
  check_has "overlapping segments" Violation.Machine_overlap (Oracle.structural s)

let test_preemption () =
  let inst = Test_util.instance ~machines:1 [ (0., [| 2. |]) ] in
  (* Aborted attempt [0,1] (volume 1 < 2), final run [3,5] (volume 2). *)
  let s =
    build inst [ seg 0 0 0. 1. 1.; seg 0 0 3. 5. 1. ] [ (0, completed 0 3. 1. 5.) ]
  in
  check_has "split completed job" Violation.Non_preemption (Oracle.structural s);
  (* The same schedule is legal under the restart relaxation. *)
  check_clean "restart relaxation"
    (Oracle.structural ~mode:(Oracle.mode ~allow_restarts:true ()) s)

let test_release () =
  let inst = Test_util.instance ~machines:1 [ (1., [| 1. |]) ] in
  let s = build inst [ seg 0 0 0.5 1.5 1. ] [ (0, completed 0 0.5 1. 1.5) ] in
  check_has "early start" Violation.Release_respect (Oracle.structural s)

let test_unknown_machine () =
  let inst = Test_util.instance ~machines:1 [ (0., [| 2. |]) ] in
  let s = build inst [ seg 0 5 0. 2. 1. ] [ (0, completed 5 0. 1. 2.) ] in
  check_has "unknown machine" Violation.Segment_bounds (Oracle.structural s)

let test_reversed_segment () =
  let inst = Test_util.instance ~machines:1 [ (0., [| 1. |]) ] in
  let s = build inst [ seg 0 0 2. 1. 1. ] [ (0, completed 0 2. 1. 1.) ] in
  check_has "reversed segment" Violation.Segment_bounds (Oracle.structural s)

let test_bad_speed () =
  let inst = Test_util.instance ~machines:1 [ (0., [| 2. |]) ] in
  let s = build inst [ seg 0 0 0. 2. 0. ] [ (0, completed 0 0. 0. 2.) ] in
  check_has "zero speed" Violation.Segment_bounds (Oracle.structural s)

let test_missing_segment () =
  let inst = Test_util.instance ~machines:1 [ (0., [| 2. |]) ] in
  let s = build inst [] [ (0, completed 0 0. 1. 2.) ] in
  check_has "completed without segment" Violation.Exactly_once (Oracle.structural s)

let test_unknown_job () =
  let inst = Test_util.instance ~machines:1 [ (0., [| 2. |]) ] in
  let s = build inst [ seg 7 0 0. 1. 1. ] [ (0, rejected 0.) ] in
  check_has "segment of unknown job" Violation.Exactly_once (Oracle.structural s)

let test_outcome_mismatch () =
  let inst = Test_util.instance ~machines:1 [ (0., [| 2. |]) ] in
  let s = build inst [ seg 0 0 0. 2. 1. ] [ (0, completed 0 0. 1. 2.5) ] in
  check_has "outcome interval mismatch" Violation.Outcome_consistency (Oracle.structural s)

let test_volume_mismatch () =
  let inst = Test_util.instance ~machines:1 [ (0., [| 3. |]) ] in
  let s = build inst [ seg 0 0 0. 2. 1. ] [ (0, completed 0 0. 1. 2.) ] in
  check_has "short volume" Violation.Outcome_consistency (Oracle.structural s)

let test_reject_before_release () =
  let inst = Test_util.instance ~machines:1 [ (1., [| 1. |]) ] in
  let s = build inst [] [ (0, rejected 0.5) ] in
  check_has "acausal rejection" Violation.Outcome_consistency (Oracle.structural s)

let test_reject_segment_after_time () =
  let inst = Test_util.instance ~machines:1 [ (0., [| 4. |]) ] in
  let s = build inst [ seg 0 0 0. 2. 1. ] [ (0, rejected ~was_running:true 1.) ] in
  check_has "segment past rejection" Violation.Outcome_consistency (Oracle.structural s)

let test_reject_full_size () =
  let inst = Test_util.instance ~machines:1 [ (0., [| 2. |]) ] in
  let s = build inst [ seg 0 0 0. 2. 1. ] [ (0, rejected ~was_running:true 2.) ] in
  check_has "rejected yet fully processed" Violation.Outcome_consistency (Oracle.structural s)

let test_deadline () =
  let inst = Test_util.deadline_instance ~machines:1 [ (0., 1., [| 2. |]) ] in
  let s = build inst [ seg 0 0 0. 2. 1. ] [ (0, completed 0 0. 1. 2.) ] in
  (* The default mode infers deadline checking from the instance. *)
  check_has "deadline miss" Violation.Deadline (Oracle.structural s);
  check_clean "deadline checking disabled"
    (Oracle.structural ~mode:(Oracle.mode ~check_deadlines:false ()) s)

(* Rejection budgets recount from the outcome array. *)
let budget_fixture () =
  let inst =
    Test_util.instance ~machines:1 [ (0., [| 1. |]); (0., [| 1. |]); (0., [| 1. |]); (0., [| 1. |]) ]
  in
  build inst
    [ seg 0 0 0. 1. 1.; seg 1 0 1. 2. 1. ]
    [ (0, completed 0 0. 1. 1.); (1, completed 0 1. 1. 2.); (2, rejected 0.); (3, rejected 0.) ]

let test_budget_count () =
  let s = budget_fixture () in
  check_clean "structural part" (Oracle.structural s);
  check_has "half rejected vs quarter budget" Violation.Rejection_budget
    (Oracle.budget_check (Oracle.Count_fraction 0.25) s);
  check_clean "half rejected vs half budget" (Oracle.budget_check (Oracle.Count_fraction 0.5) s)

let test_budget_weight () =
  let inst =
    Test_util.weighted_instance ~machines:1 [ (0., 3., [| 1. |]); (0., 1., [| 1. |]) ]
  in
  let s = build inst [ seg 1 0 0. 1. 1. ] [ (0, rejected 0.); (1, completed 0 0. 1. 1.) ] in
  (* 3 of 4 weight units rejected. *)
  check_has "rejected weight over budget" Violation.Rejection_budget
    (Oracle.budget_check (Oracle.Weight_fraction 0.5) s);
  check_clean "rejected weight within budget"
    (Oracle.budget_check (Oracle.Weight_fraction 0.8) s)

(* Reconcile: the driver's incremental metrics must match a recomputation;
   a doctored snapshot must be flagged as drift. *)
let live_fixture () =
  let entry =
    match Sched_experiments.Policy_registry.find "flow-reject" with
    | Some e -> e
    | None -> Alcotest.fail "flow-reject not registered"
  in
  let inst = Test_util.random_instance ~seed:11 ~n:30 ~m:3 () in
  let schedule, lm = entry.Sched_experiments.Policy_registry.run_live inst in
  let snap =
    {
      Oracle.flow = lm.Sched_sim.Driver.flow;
      energy = lm.Sched_sim.Driver.energy;
      rejection = lm.Sched_sim.Driver.rejection;
      makespan = lm.Sched_sim.Driver.makespan;
    }
  in
  (schedule, snap)

let test_reconcile () =
  let schedule, snap = live_fixture () in
  check_clean "incremental metrics agree" (Oracle.reconcile snap schedule);
  check_has "doctored energy" Violation.Metric_drift
    (Oracle.reconcile { snap with Oracle.energy = snap.Oracle.energy +. 1. } schedule);
  let drifted =
    {
      snap with
      Oracle.rejection = { snap.Oracle.rejection with Metrics.count = snap.Oracle.rejection.Metrics.count + 1 };
    }
  in
  check_has "doctored rejection count" Violation.Metric_drift (Oracle.reconcile drifted schedule)

let test_full_check () =
  let schedule, snap = live_fixture () in
  check_clean "full suite on a real run"
    (Oracle.check ~budget:(Oracle.Count_fraction 0.6) ~live:snap schedule);
  check_has "full suite combines budget" Violation.Rejection_budget
    (Oracle.check ~budget:(Oracle.Count_fraction (-1.)) ~live:snap schedule)

let test_assert_clean () =
  let v = Violation.make ~job:3 ~at:1.5 Violation.Machine_overlap "synthetic" in
  (match Oracle.assert_clean ~what:"ok" [] with () -> ());
  match Oracle.assert_clean ~what:"bad" [ v ] with
  | () -> Alcotest.fail "assert_clean accepted a violation"
  | exception Oracle.Violations (what, vs) ->
      Alcotest.(check string) "run name carried" "bad" what;
      Alcotest.(check int) "violations carried" 1 (List.length vs)

let test_violation_printing () =
  let v = Violation.make ~job:3 ~machine:1 ~at:1.5 Violation.Machine_overlap "jobs collide" in
  let s = Violation.to_string v in
  Alcotest.(check bool) "label present" true (Test_util.contains s "machine-overlap");
  Alcotest.(check bool) "detail present" true (Test_util.contains s "jobs collide");
  let r = Oracle.report [ v; v ] in
  Alcotest.(check bool) "report counts" true (Test_util.contains r "2");
  (* check_name/check_of_name round-trip over every constructor. *)
  List.iter
    (fun c ->
      match Violation.check_of_name (Violation.check_name c) with
      | Some c' when c' = c -> ()
      | _ -> Alcotest.failf "check_of_name failed for %s" (Violation.check_name c))
    Violation.all_checks

let test_violation_order () =
  let a = Violation.make ~job:0 Violation.Segment_bounds "a" in
  let b = Violation.make ~job:1 Violation.Segment_bounds "a" in
  let c = Violation.make Violation.Metric_drift "z" in
  Alcotest.(check bool) "job tie-break" true (Violation.compare a b < 0);
  Alcotest.(check int) "reflexive" 0 (Violation.compare a a);
  Alcotest.(check bool) "antisymmetric" true
    (Violation.compare a c = -Violation.compare c a)

let test_check_obs () =
  let reg = Sched_obs.Registry.create () in
  Check_obs.record reg [];
  Check_obs.record reg
    [
      Violation.make Violation.Machine_overlap "x";
      Violation.make Violation.Machine_overlap "y";
      Violation.make Violation.Metric_drift "z";
    ];
  let totals = Check_obs.violation_totals reg in
  Alcotest.(check (list (pair string (float 0.))))
    "per-check counters"
    [ ("machine-overlap", 2.); ("metric-drift", 1.) ]
    totals;
  let counter name =
    match Sched_obs.Registry.find reg ~name ~labels:[] with
    | Some { Sched_obs.Registry.instrument = Sched_obs.Registry.Counter c; _ } ->
        Sched_obs.Metric.Counter.value c
    | _ -> Alcotest.failf "missing counter %s" name
  in
  Alcotest.(check (float 0.)) "schedules audited" 2. (counter "sched_check_schedules_total");
  Alcotest.(check (float 0.)) "clean schedules" 1. (counter "sched_check_clean_total")

(* Driver integration: ?check never changes the schedule and records
   telemetry when an obs handle is supplied. *)
let test_driver_check () =
  let inst = Test_util.random_instance ~seed:3 ~n:25 ~m:2 () in
  let plain = Sched_sim.Driver.run_schedule Sched_baselines.Greedy_dispatch.spt inst in
  let reg = Sched_obs.Registry.create () in
  let obs = Sched_obs.Obs.create ~registry:reg () in
  let audited =
    Sched_sim.Driver.run_schedule ~obs ~check:true Sched_baselines.Greedy_dispatch.spt inst
  in
  Alcotest.(check string) "audit is observational"
    (Serialize.schedule_to_string plain)
    (Serialize.schedule_to_string audited);
  match Sched_obs.Registry.find reg ~name:"sched_check_schedules_total" ~labels:[] with
  | Some { Sched_obs.Registry.instrument = Sched_obs.Registry.Counter c; _ } ->
      Alcotest.(check (float 0.)) "audit recorded" 1. (Sched_obs.Metric.Counter.value c)
  | _ -> Alcotest.fail "driver ?check did not record telemetry"

let suite =
  [
    Alcotest.test_case "clean schedule passes" `Quick test_clean;
    Alcotest.test_case "machine overlap" `Quick test_overlap;
    Alcotest.test_case "non-preemption / restarts" `Quick test_preemption;
    Alcotest.test_case "release respect" `Quick test_release;
    Alcotest.test_case "unknown machine" `Quick test_unknown_machine;
    Alcotest.test_case "reversed segment" `Quick test_reversed_segment;
    Alcotest.test_case "non-positive speed" `Quick test_bad_speed;
    Alcotest.test_case "completed without segment" `Quick test_missing_segment;
    Alcotest.test_case "unknown job" `Quick test_unknown_job;
    Alcotest.test_case "outcome interval mismatch" `Quick test_outcome_mismatch;
    Alcotest.test_case "processed volume mismatch" `Quick test_volume_mismatch;
    Alcotest.test_case "rejection before release" `Quick test_reject_before_release;
    Alcotest.test_case "segment past rejection" `Quick test_reject_segment_after_time;
    Alcotest.test_case "rejected at full size" `Quick test_reject_full_size;
    Alcotest.test_case "deadline miss" `Quick test_deadline;
    Alcotest.test_case "count budget" `Quick test_budget_count;
    Alcotest.test_case "weight budget" `Quick test_budget_weight;
    Alcotest.test_case "metric reconciliation" `Quick test_reconcile;
    Alcotest.test_case "full check composition" `Quick test_full_check;
    Alcotest.test_case "assert_clean raises" `Quick test_assert_clean;
    Alcotest.test_case "violation printing" `Quick test_violation_printing;
    Alcotest.test_case "violation ordering" `Quick test_violation_order;
    Alcotest.test_case "telemetry counters" `Quick test_check_obs;
    Alcotest.test_case "driver ?check hook" `Quick test_driver_check;
  ]
