open Sched_model
open Sched_workload
open Sched_stats

let test_gen_determinism () =
  let gen = Suite.flow_pareto ~n:40 ~m:3 in
  let a = Gen.instance gen ~seed:9 and b = Gen.instance gen ~seed:9 in
  Array.iter2
    (fun (x : Job.t) (y : Job.t) ->
      Alcotest.(check (float 0.)) "same release" x.Job.release y.Job.release;
      Alcotest.(check (float 0.)) "same size" (Job.size x 0) (Job.size y 0))
    (Instance.jobs_by_release a) (Instance.jobs_by_release b)

let test_gen_seed_changes () =
  let gen = Suite.flow_uniform ~n:40 ~m:2 in
  let a = Gen.instance gen ~seed:1 and b = Gen.instance gen ~seed:2 in
  let total inst =
    Array.fold_left (fun acc (j : Job.t) -> acc +. Job.size j 0) 0. (Instance.jobs_by_release inst)
  in
  Alcotest.(check bool) "different totals" true (total a <> total b)

let test_releases_sorted_nonneg () =
  List.iter
    (fun gen ->
      let inst = Gen.instance gen ~seed:3 in
      let jobs = Instance.jobs_by_release inst in
      let prev = ref (-1.) in
      Array.iter
        (fun (j : Job.t) ->
          Alcotest.(check bool) "nonneg" true (j.Job.release >= 0.);
          Alcotest.(check bool) "sorted" true (j.Job.release >= !prev);
          prev := j.Job.release)
        jobs)
    (Suite.all_flow ~n:50 ~m:3)

let test_batched_arrivals () =
  let gen =
    Gen.make ~arrivals:(Gen.Batched { every = 5.; size = 4 }) ~n:12 ~m:1 ()
  in
  let inst = Gen.instance gen ~seed:1 in
  let jobs = Instance.jobs_by_release inst in
  Alcotest.(check (float 0.)) "first batch" 0. jobs.(0).Job.release;
  Alcotest.(check (float 0.)) "second batch" 5. jobs.(4).Job.release;
  Alcotest.(check (float 0.)) "third batch" 10. jobs.(8).Job.release

let test_all_at_zero () =
  let gen = Gen.make ~arrivals:Gen.All_at_zero ~n:10 ~m:1 () in
  let inst = Gen.instance gen ~seed:1 in
  Array.iter
    (fun (j : Job.t) -> Alcotest.(check (float 0.)) "zero" 0. j.Job.release)
    (Instance.jobs_by_release inst)

let test_slot_laxity_alignment () =
  let gen = Suite.deadline_energy ~n:40 ~m:2 ~alpha:3. in
  let inst = Gen.instance gen ~seed:6 in
  Array.iter
    (fun (j : Job.t) ->
      let d = Option.get j.Job.deadline in
      Alcotest.(check bool) "integer release" true (Float.is_integer j.Job.release);
      Alcotest.(check bool) "integer deadline" true (Float.is_integer d);
      Alcotest.(check bool) "span fits min size" true
        (d -. j.Job.release >= Float.ceil (Job.min_size j) -. 1e-9))
    (Instance.jobs_by_release inst)

let test_laxity_deadlines () =
  let gen =
    Gen.make ~deadlines:(Gen.Laxity (Dist.uniform ~lo:2. ~hi:4.)) ~n:30 ~m:2 ()
  in
  let inst = Gen.instance gen ~seed:2 in
  Array.iter
    (fun (j : Job.t) ->
      let d = Option.get j.Job.deadline in
      Alcotest.(check bool) "deadline after release + pmin" true
        (d >= j.Job.release +. Job.min_size j -. 1e-9))
    (Instance.jobs_by_release inst)

let test_weights () =
  let gen = Suite.weighted_energy ~n:30 ~m:2 ~alpha:3. in
  let inst = Gen.instance gen ~seed:2 in
  Array.iter
    (fun (j : Job.t) -> Alcotest.(check bool) "weight >= 1" true (j.Job.weight >= 1.))
    (Instance.jobs_by_release inst)

(* --- shapes --- *)

let rng () = Rng.create 77

let test_shape_identical () =
  let v = Shape.sizes Shape.identical (rng ()) ~base:3. ~m:4 in
  Array.iter (fun p -> Alcotest.(check (float 0.)) "identical" 3. p) v

let test_shape_related () =
  let v = Shape.sizes (Shape.related ~speeds:[| 1.; 2. |]) (rng ()) ~base:4. ~m:2 in
  Alcotest.(check (float 1e-12)) "slow machine" 4. v.(0);
  Alcotest.(check (float 1e-12)) "fast machine" 2. v.(1)

let test_shape_unrelated_spread () =
  let shape = Shape.unrelated ~spread:2. in
  let r = rng () in
  for _ = 1 to 50 do
    let v = Shape.sizes shape r ~base:10. ~m:3 in
    Array.iter (fun p -> Alcotest.(check bool) "within spread" true (p >= 5. && p <= 20.)) v
  done

let test_shape_restricted_always_eligible () =
  let shape = Shape.restricted ~eligible_prob:0.2 in
  let r = rng () in
  for _ = 1 to 100 do
    let v = Shape.sizes shape r ~base:1. ~m:5 in
    Alcotest.(check bool) "one finite" true (Array.exists Float.is_finite v)
  done

let test_shape_clustered () =
  let shape = Shape.clustered ~clusters:2 ~penalty:3. in
  let r = rng () in
  for _ = 1 to 50 do
    let v = Shape.sizes shape r ~base:2. ~m:4 in
    Array.iter
      (fun p -> Alcotest.(check bool) "base or penalized" true (p = 2. || p = 6.))
      v;
    Alcotest.(check bool) "some at base" true (Array.exists (fun p -> p = 2.) v)
  done

let test_instances_always_valid_property () =
  QCheck.Test.make ~name:"generated instances are well-formed" ~count:40
    QCheck.(pair (int_bound 10000) (int_range 0 5))
    (fun (seed, which) ->
      let gens = Suite.all_flow ~n:30 ~m:3 in
      let gen = List.nth gens (which mod List.length gens) in
      let inst = Gen.instance gen ~seed in
      Instance.n inst = 30 && Instance.m inst = 3)
  |> QCheck_alcotest.to_alcotest

let suite =
  [
    Alcotest.test_case "generator determinism" `Quick test_gen_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_gen_seed_changes;
    Alcotest.test_case "releases sorted and nonneg" `Quick test_releases_sorted_nonneg;
    Alcotest.test_case "batched arrivals" `Quick test_batched_arrivals;
    Alcotest.test_case "all at zero" `Quick test_all_at_zero;
    Alcotest.test_case "slot laxity alignment" `Quick test_slot_laxity_alignment;
    Alcotest.test_case "laxity deadlines" `Quick test_laxity_deadlines;
    Alcotest.test_case "weights positive" `Quick test_weights;
    Alcotest.test_case "shape identical" `Quick test_shape_identical;
    Alcotest.test_case "shape related" `Quick test_shape_related;
    Alcotest.test_case "shape unrelated spread" `Quick test_shape_unrelated_spread;
    Alcotest.test_case "shape restricted eligibility" `Quick test_shape_restricted_always_eligible;
    Alcotest.test_case "shape clustered" `Quick test_shape_clustered;
    test_instances_always_valid_property ();
  ]

let test_diurnal_arrivals () =
  let gen =
    Gen.make ~arrivals:(Gen.Diurnal { base_rate = 1.; amplitude = 0.8; period = 50. })
      ~n:200 ~m:1 ()
  in
  let inst = Gen.instance gen ~seed:4 in
  let jobs = Instance.jobs_by_release inst in
  Alcotest.(check int) "all generated" 200 (Array.length jobs);
  let prev = ref (-1.) in
  Array.iter
    (fun (j : Job.t) ->
      Alcotest.(check bool) "sorted" true (j.Job.release >= !prev);
      prev := j.Job.release)
    jobs;
  (* Mean rate over full periods should be near base_rate. *)
  let span = jobs.(199).Job.release in
  let rate = 200. /. span in
  Alcotest.(check bool)
    (Printf.sprintf "rate %.2f near 1.0" rate)
    true
    (rate > 0.6 && rate < 1.6)

let test_diurnal_modulation () =
  (* Arrival density in peak half-periods should exceed trough ones. *)
  let gen =
    Gen.make ~arrivals:(Gen.Diurnal { base_rate = 1.; amplitude = 1.0; period = 100. })
      ~n:400 ~m:1 ()
  in
  let inst = Gen.instance gen ~seed:7 in
  let peak = ref 0 and trough = ref 0 in
  Array.iter
    (fun (j : Job.t) ->
      let phase = Float.rem j.Job.release 100. /. 100. in
      if phase < 0.5 then incr peak else incr trough)
    (Instance.jobs_by_release inst);
  Alcotest.(check bool)
    (Printf.sprintf "peak %d > trough %d" !peak !trough)
    true (!peak > !trough)

let suite =
  suite
  @ [
      Alcotest.test_case "diurnal arrivals" `Quick test_diurnal_arrivals;
      Alcotest.test_case "diurnal modulation" `Quick test_diurnal_modulation;
    ]

let test_swf_parse_example () =
  match Swf.parse ~m:2 Swf.example with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok inst ->
      (* Job 5 has runtime -1 and is skipped: 8 usable of 9. *)
      Alcotest.(check int) "usable jobs" 8 (Instance.n inst);
      Alcotest.(check int) "machines" 2 (Instance.m inst);
      let jobs = Instance.jobs_by_release inst in
      Alcotest.(check (float 0.)) "rebased to 0" 0. jobs.(0).Job.release;
      (* First job: runtime 120 x 4 procs / 2 machines = 240 base size. *)
      Alcotest.(check (float 1e-9)) "demand preserved" 240. (Job.size jobs.(0) 0)

let test_swf_max_jobs () =
  match Swf.parse ~max_jobs:3 Swf.example with
  | Ok inst -> Alcotest.(check int) "truncated" 3 (Instance.n inst)
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_swf_malformed () =
  Alcotest.(check bool) "bad line rejected" true
    (match Swf.parse "1 zz 0 10 1" with Error _ -> true | Ok _ -> false);
  Alcotest.(check bool) "empty trace rejected" true
    (match Swf.parse "; only comments\n" with Error _ -> true | Ok _ -> false)

let test_swf_runs_end_to_end () =
  match Swf.parse ~m:2 Swf.example with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok inst ->
      let r = Rejection.Api.run_flow ~eps:0.25 inst in
      Alcotest.(check bool) "positive flow" true (r.Rejection.Api.flow.Metrics.total > 0.)

let suite =
  suite
  @ [
      Alcotest.test_case "swf parse example" `Quick test_swf_parse_example;
      Alcotest.test_case "swf max_jobs" `Quick test_swf_max_jobs;
      Alcotest.test_case "swf malformed" `Quick test_swf_malformed;
      Alcotest.test_case "swf end-to-end" `Quick test_swf_runs_end_to_end;
    ]
