(* Recorder differential layer: attaching a flight recorder must be
   strictly observational.  For every corpus case x registry policy, on
   both driver cores, the canonical schedule dump with a recorder attached
   must be byte-identical to the recorder-off run — and the two cores'
   recorders must agree byte-for-byte on the exported rejsched.trace/2
   NDJSON (both cores record the same events at the same sites in the
   same float-operation order). *)

open Sched_model
open Sched_sim
module P = Sched_experiments.Policy_registry
module Corpus = Sched_fuzz.Corpus
module Rec = Sched_obs.Recorder
module TE = Trace_export

let check_case ~what (e : P.entry) instance =
  (* Deadline-bearing instances skip the in-driver audit for the same
     reason the flat differential suite does: most policies legitimately
     ignore deadlines, and byte-identity is the property under test. *)
  let check = not (Instance.has_deadlines instance) in
  let canonical s = Serialize.schedule_to_canonical_string s in
  let run ~impl ~recorder = fst (e.P.run_impl ?recorder ~impl ~check instance) in
  let boxed_off = canonical (run ~impl:Driver.Boxed ~recorder:None) in
  let flat_off = canonical (run ~impl:Driver.Flat ~recorder:None) in
  let rc_boxed = Rec.create ~capacity:4096 () in
  let boxed_on = canonical (run ~impl:Driver.Boxed ~recorder:(Some rc_boxed)) in
  let rc_flat = Rec.create ~capacity:4096 () in
  let flat_on = canonical (run ~impl:Driver.Flat ~recorder:(Some rc_flat)) in
  if not (String.equal boxed_off boxed_on) then
    Alcotest.failf "%s: recorder perturbed the boxed schedule" what;
  if not (String.equal flat_off flat_on) then
    Alcotest.failf "%s: recorder perturbed the flat schedule" what;
  if not (String.equal boxed_off flat_off) then
    Alcotest.failf "%s: cores diverge (independent of the recorder)" what;
  Alcotest.(check bool) (what ^ ": events recorded") true (Rec.total rc_boxed > 0);
  let nb = TE.recorder_to_ndjson rc_boxed and nf = TE.recorder_to_ndjson rc_flat in
  if not (String.equal nb nf) then
    Alcotest.failf "%s: recorder contents diverge across cores:\n--- boxed ---\n%s--- flat ---\n%s"
      what nb nf

let test_corpus_all_policies () =
  List.iter
    (fun (c : Corpus.case) ->
      List.iter
        (fun (e : P.entry) ->
          check_case ~what:(Printf.sprintf "%s/%s" c.Corpus.name e.P.name) e c.Corpus.instance)
        P.all)
    (Corpus.seeds ())

(* A ring too small for the run must wrap identically on both cores and
   still leave the schedule untouched — the forensics configuration
   (small ring, long run) is exactly this shape. *)
let test_wrapping_ring_identical () =
  let inst = Test_util.random_instance ~seed:29 ~n:120 ~m:3 () in
  let entry = match P.find "flow-reject" with Some e -> e | None -> Alcotest.fail "registry" in
  let base = Serialize.schedule_to_canonical_string (fst (entry.P.run_impl ~impl:Driver.Flat ~check:false inst)) in
  let rc_boxed = Rec.create ~capacity:16 () in
  let sb = fst (entry.P.run_impl ~recorder:rc_boxed ~impl:Driver.Boxed ~check:false inst) in
  let rc_flat = Rec.create ~capacity:16 () in
  let sf = fst (entry.P.run_impl ~recorder:rc_flat ~impl:Driver.Flat ~check:false inst) in
  Alcotest.(check string) "schedule untouched (boxed)" base
    (Serialize.schedule_to_canonical_string sb);
  Alcotest.(check string) "schedule untouched (flat)" base
    (Serialize.schedule_to_canonical_string sf);
  Alcotest.(check bool) "ring wrapped" true (Rec.dropped rc_flat > 0);
  Alcotest.(check int) "same drop count" (Rec.dropped rc_boxed) (Rec.dropped rc_flat);
  Alcotest.(check string) "wrapped tails byte-identical"
    (TE.recorder_to_ndjson rc_boxed) (TE.recorder_to_ndjson rc_flat)

let suite =
  [
    Alcotest.test_case "corpus x policies x cores, recorder on/off" `Quick
      test_corpus_all_policies;
    Alcotest.test_case "wrapping ring identical across cores" `Quick
      test_wrapping_ring_identical;
  ]
