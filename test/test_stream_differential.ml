(* Stream-vs-batch differential layer: feeding the same jobs through an
   incremental Driver.Session — in arrival batches of 1, of 7 and of all
   at once — must produce a schedule byte-identical (canonical
   serialization) to the one-shot batch run, with bit-identical live
   metrics, for every corpus case x registry policy, with the oracle
   auditing both sides wherever the instance carries no deadlines.  A
   retire-mode pass over the same stream must agree on the live metrics
   while never materializing a schedule. *)

open Sched_model
open Sched_sim
module P = Sched_experiments.Policy_registry
module Corpus = Sched_fuzz.Corpus

(* Bit-identical float equality: the session *is* the batch driver's
   loop, so even the metric accumulation order is the same — exact
   equality, not tolerance. *)
let check_f what a b =
  if not (Float.equal a b) then
    Alcotest.failf "%s: batch %.17g <> stream %.17g" what a b

let compare_live what (lb : Driver.live_metrics) (lf : Driver.live_metrics) =
  let open Metrics in
  check_f (what ^ ": flow.total") lb.Driver.flow.total lf.Driver.flow.total;
  check_f (what ^ ": flow.weighted") lb.Driver.flow.weighted lf.Driver.flow.weighted;
  check_f
    (what ^ ": flow.total_with_rejected")
    lb.Driver.flow.total_with_rejected lf.Driver.flow.total_with_rejected;
  check_f
    (what ^ ": flow.weighted_with_rejected")
    lb.Driver.flow.weighted_with_rejected lf.Driver.flow.weighted_with_rejected;
  check_f (what ^ ": flow.max_flow") lb.Driver.flow.max_flow lf.Driver.flow.max_flow;
  check_f (what ^ ": flow.mean_flow") lb.Driver.flow.mean_flow lf.Driver.flow.mean_flow;
  check_f (what ^ ": flow.max_stretch") lb.Driver.flow.max_stretch lf.Driver.flow.max_stretch;
  check_f (what ^ ": energy") lb.Driver.energy lf.Driver.energy;
  check_f (what ^ ": makespan") lb.Driver.makespan lf.Driver.makespan;
  Alcotest.(check int)
    (what ^ ": rejection.count")
    lb.Driver.rejection.count lf.Driver.rejection.count;
  check_f (what ^ ": rejection.fraction") lb.Driver.rejection.fraction lf.Driver.rejection.fraction;
  check_f (what ^ ": rejection.weight") lb.Driver.rejection.weight lf.Driver.rejection.weight;
  check_f
    (what ^ ": rejection.weight_fraction")
    lb.Driver.rejection.weight_fraction lf.Driver.rejection.weight_fraction;
  Alcotest.(check int)
    (what ^ ": rejection.mid_run")
    lb.Driver.rejection.mid_run lf.Driver.rejection.mid_run

(* Stream the instance's jobs in [chunk]-sized arrival batches, draining
   up to the last fed release after each batch — the serve loop's exact
   cadence. *)
let stream_run ~check ~retire (e : P.entry) instance ~chunk =
  let s =
    e.P.open_stream ~check ~retire ~name:instance.Instance.name
      ~machines:instance.Instance.machines ()
  in
  let jobs = Instance.jobs_by_release instance in
  let n = Array.length jobs in
  let k = ref 0 in
  while !k < n do
    let stop = min n (!k + chunk) in
    for i = !k to stop - 1 do
      s.P.ss_feed jobs.(i)
    done;
    s.P.ss_drain_until jobs.(stop - 1).Job.release;
    Alcotest.(check int) "fed count tracks the feed" stop (s.P.ss_fed ());
    k := stop
  done;
  s.P.ss_close ()

let check_stream ~what (e : P.entry) instance =
  (* Deadline-bearing instances are compared un-audited, exactly as the
     flat-vs-boxed differential does: the in-driver audit has no
     check_deadlines knob and most registry policies ignore deadlines. *)
  let check = not (Instance.has_deadlines instance) in
  let sb, lb = e.P.run_impl ~impl:(Driver.default_impl ()) ~check instance in
  let cb = Serialize.schedule_to_canonical_string sb in
  let n = Array.length (Instance.jobs_by_release instance) in
  List.iter
    (fun chunk ->
      let what = Printf.sprintf "%s/batch=%d" what chunk in
      match stream_run ~check ~retire:false e instance ~chunk with
      | Some sf, lf ->
          let cf = Serialize.schedule_to_canonical_string sf in
          if not (String.equal cb cf) then
            Alcotest.failf "%s: streamed schedule diverges from batch:\n--- batch ---\n%s\n--- stream ---\n%s"
              what cb cf;
          compare_live what lb lf
      | None, _ -> Alcotest.failf "%s: no schedule from an un-retired session" what)
    [ 1; 7; max 1 n ];
  (* Retirement drops the schedule but must not perturb a single metric
     bit — the aggregates accumulate on the same code path. *)
  match stream_run ~check:false ~retire:true e instance ~chunk:7 with
  | None, lr -> compare_live (what ^ "/retire") lb lr
  | Some _, _ -> Alcotest.failf "%s: retire mode materialized a schedule" what

(* Every corpus case under every registry policy: the corpus is the
   fuzzer's distilled tie-heavy / restricted / adversarial corners,
   exactly where a horizon or ordering bug in the session would show. *)
let test_corpus_all_policies () =
  let cases = Corpus.seeds () in
  Alcotest.(check int) "ten corpus cases" 10 (List.length cases);
  List.iter
    (fun (c : Corpus.case) ->
      List.iter
        (fun (e : P.entry) ->
          check_stream ~what:(Printf.sprintf "%s/%s" c.Corpus.name e.P.name) e c.Corpus.instance)
        P.all)
    cases

(* The dyadic random generator as an independent instance source,
   policies round-robined. *)
let test_random_instances () =
  let entries = Array.of_list P.all in
  for seed = 0 to 19 do
    let weighted = seed mod 2 = 1 and restricted = seed mod 3 = 0 in
    let instance =
      Test_util.random_instance ~weighted ~restricted ~seed ~n:(20 + (7 * seed))
        ~m:(1 + (seed mod 4)) ()
    in
    let e = entries.(seed mod Array.length entries) in
    check_stream ~what:(Printf.sprintf "random/s%d/%s" seed e.P.name) e instance
  done

(* Feed-order discipline: the session must reject a job released behind
   the drained horizon and a (release, id) pair that does not strictly
   increase — silently accepting either would quietly break the
   byte-identity argument the two tests above pin. *)
let test_feed_order_enforced () =
  let e = Option.get (P.find "greedy-spt") in
  let machines = Machine.fleet 2 in
  let mk id release = Job.create ~id ~release ~sizes:[| 1.0; 1.0 |] () in
  let s = e.P.open_stream ~machines () in
  s.P.ss_feed (mk 0 1.0);
  Alcotest.check_raises "duplicate (release, id) rejected"
    (Invalid_argument
       "Driver.Session: job 0 at 1 breaks the strictly increasing (release, id) feed order")
    (fun () -> s.P.ss_feed (mk 0 1.0));
  let s2 = e.P.open_stream ~machines () in
  s2.P.ss_feed (mk 0 5.0);
  s2.P.ss_drain_until 5.0;
  Alcotest.check_raises "feed behind the drained horizon rejected"
    (Invalid_argument "Driver.Session: job 1 released at 2 behind the drained horizon 5")
    (fun () -> s2.P.ss_feed (mk 1 2.0))

let suite =
  [
    ("corpus x all policies x batch {1,7,n}, byte-identical", `Slow, test_corpus_all_policies);
    ("dyadic random instances, byte-identical", `Slow, test_random_instances);
    ("feed order discipline enforced", `Quick, test_feed_order_enforced);
  ]
