open Sched_model
open Sched_sim

(* A minimal FIFO policy on machine (id mod m), used to exercise the driver
   mechanics directly. *)
let fifo_policy ?(target = fun (j : Job.t) -> j.Job.id mod Array.length j.Job.sizes) () =
  {
    Driver.name = "test-fifo";
    init = (fun _ -> ());
    on_arrival = (fun () _view j -> Driver.dispatch (target j));
    select =
      (fun () view i ->
        match Driver.pending view i with
        | [] -> None
        | first :: rest ->
            let earliest =
              List.fold_left
                (fun (acc : Job.t) (l : Job.t) ->
                  if (l.Job.release, l.Job.id) < (acc.Job.release, acc.Job.id) then l else acc)
                first rest
            in
            Some { Driver.job = earliest.Job.id; speed = 1.0 });
  }

let test_single_job () =
  let inst = Test_util.instance [ (1., [| 3. |]) ] in
  let s = Driver.run_schedule (fifo_policy ~target:(fun _ -> 0) ()) inst in
  Schedule.assert_valid s;
  match Schedule.outcome s 0 with
  | Outcome.Completed c ->
      Alcotest.(check (float 1e-9)) "start at release" 1. c.Outcome.start;
      Alcotest.(check (float 1e-9)) "finish" 4. c.Outcome.finish
  | Outcome.Rejected _ -> Alcotest.fail "should complete"

let test_fifo_sequencing () =
  let inst = Test_util.instance [ (0., [| 2. |]); (0.5, [| 2. |]); (1., [| 2. |]) ] in
  let s = Driver.run_schedule (fifo_policy ~target:(fun _ -> 0) ()) inst in
  Schedule.assert_valid s;
  let finish id =
    match Schedule.outcome s id with
    | Outcome.Completed c -> c.Outcome.finish
    | Outcome.Rejected _ -> Float.nan
  in
  Alcotest.(check (float 1e-9)) "job0" 2. (finish 0);
  Alcotest.(check (float 1e-9)) "job1" 4. (finish 1);
  Alcotest.(check (float 1e-9)) "job2" 6. (finish 2)

let test_machine_speed () =
  let machines = [| Machine.create ~id:0 ~speed:2. () |] in
  let jobs = [ Job.create ~id:0 ~release:0. ~sizes:[| 4. |] () ] in
  let inst = Instance.create ~machines ~jobs () in
  let s = Driver.run_schedule (fifo_policy ~target:(fun _ -> 0) ()) inst in
  match Schedule.outcome s 0 with
  | Outcome.Completed c -> Alcotest.(check (float 1e-9)) "speed-2 finish" 2. c.Outcome.finish
  | Outcome.Rejected _ -> Alcotest.fail "should complete"

let test_exec_speed () =
  (* A policy starting everything at execution speed 4. *)
  let policy =
    {
      Driver.name = "speedy";
      init = (fun _ -> ());
      on_arrival = (fun () _ _ -> Driver.dispatch 0);
      select =
        (fun () view i ->
          match Driver.pending view i with
          | [] -> None
          | (j : Job.t) :: _ -> Some { Driver.job = j.Job.id; speed = 4.0 });
    }
  in
  let inst = Test_util.instance [ (0., [| 8. |]) ] in
  let s = Driver.run_schedule policy inst in
  match Schedule.outcome s 0 with
  | Outcome.Completed c ->
      Alcotest.(check (float 1e-9)) "finish" 2. c.Outcome.finish;
      Alcotest.(check (float 1e-9)) "speed recorded" 4. c.Outcome.speed
  | Outcome.Rejected _ -> Alcotest.fail "should complete"

(* Rejection mechanics: a policy that rejects the running job whenever a new
   one arrives. *)
let reject_running_policy () =
  {
    Driver.name = "reject-running";
    init = (fun _ -> ());
    on_arrival =
      (fun () view (j : Job.t) ->
        let reject =
          match Driver.running_on view 0 with
          | Some r -> [ r.Driver.job.Job.id ]
          | None -> []
        in
        ignore j;
        { Driver.dispatch_to = 0; reject; restart = [] });
    select =
      (fun () view i ->
        match Driver.pending view i with
        | [] -> None
        | (j : Job.t) :: _ -> Some { Driver.job = j.Job.id; speed = 1.0 });
  }

let test_midrun_rejection () =
  let inst = Test_util.instance [ (0., [| 10. |]); (3., [| 1. |]) ] in
  let trace = Trace.create () in
  let s = Driver.run ~trace (reject_running_policy ()) inst |> fst in
  Schedule.assert_valid s;
  (match Schedule.outcome s 0 with
  | Outcome.Rejected r ->
      Alcotest.(check (float 1e-9)) "rejected at arrival" 3. r.Outcome.time;
      Alcotest.(check bool) "was running" true r.Outcome.was_running
  | Outcome.Completed _ -> Alcotest.fail "job 0 should be rejected");
  (* The partial segment [0, 3) must be recorded. *)
  let segs = Schedule.segments_of_machine s 0 in
  Alcotest.(check int) "two segments (partial + job1)" 2 (List.length segs);
  (* Trace has a Reject event with the right remaining volume. *)
  let remaining =
    List.find_map
      (fun (e : Trace.entry) ->
        match e.Trace.event with Trace.Reject { remaining; _ } -> Some remaining | _ -> None)
      (Trace.events trace)
  in
  Alcotest.(check (option (float 1e-9))) "remaining 7" (Some 7.) remaining

let test_pending_rejection () =
  (* Reject a pending (not running) job. *)
  let policy =
    {
      Driver.name = "reject-second";
      init = (fun _ -> ());
      on_arrival =
        (fun () _view (j : Job.t) ->
          if j.Job.id = 2 then { Driver.dispatch_to = 0; reject = [ 1 ]; restart = [] }
          else Driver.dispatch 0);
      select =
        (fun () view i ->
          match Driver.pending view i with
          | [] -> None
          | first :: rest ->
              let earliest =
                List.fold_left
                  (fun (a : Job.t) (l : Job.t) -> if l.Job.id < a.Job.id then l else a)
                  first rest
              in
              Some { Driver.job = earliest.Job.id; speed = 1.0 });
    }
  in
  let inst = Test_util.instance [ (0., [| 10. |]); (1., [| 5. |]); (2., [| 5. |]) ] in
  let s = Driver.run_schedule policy inst in
  Schedule.assert_valid s;
  match Schedule.outcome s 1 with
  | Outcome.Rejected r ->
      Alcotest.(check bool) "not running" false r.Outcome.was_running;
      Alcotest.(check (option int)) "assigned machine" (Some 0) r.Outcome.assigned_to
  | Outcome.Completed _ -> Alcotest.fail "job 1 should be rejected"

let test_self_rejection () =
  (* The newly arrived job may itself be rejected. *)
  let policy =
    {
      Driver.name = "reject-self";
      init = (fun _ -> ());
      on_arrival = (fun () _ (j : Job.t) -> { Driver.dispatch_to = 0; reject = [ j.Job.id ]; restart = [] });
      select = (fun () _ _ -> None);
    }
  in
  let inst = Test_util.instance [ (0., [| 1. |]) ] in
  let s = Driver.run_schedule policy inst in
  match Schedule.outcome s 0 with
  | Outcome.Rejected r -> Alcotest.(check (float 1e-9)) "at release" 0. r.Outcome.time
  | Outcome.Completed _ -> Alcotest.fail "should be rejected"

let test_invalid_dispatch_raises () =
  let policy =
    {
      (fifo_policy ()) with
      Driver.on_arrival = (fun () _ _ -> Driver.dispatch 7);
    }
  in
  let inst = Test_util.instance [ (0., [| 1. |]) ] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Driver.run_schedule policy inst);
       false
     with Invalid_argument _ -> true)

let test_ineligible_dispatch_raises () =
  let inst = Test_util.instance ~machines:2 [ (0., [| Float.infinity; 1. |]) ] in
  let policy = fifo_policy ~target:(fun _ -> 0) () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Driver.run_schedule policy inst);
       false
     with Invalid_argument _ -> true)

let test_unknown_rejection_raises () =
  let policy =
    {
      (fifo_policy ~target:(fun _ -> 0) ()) with
      Driver.on_arrival = (fun () _ _ -> { Driver.dispatch_to = 0; reject = [ 99 ]; restart = [] });
    }
  in
  let inst = Test_util.instance [ (0., [| 1. |]) ] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Driver.run_schedule policy inst);
       false
     with Invalid_argument _ -> true)

let test_trace_event_counts () =
  let inst = Test_util.instance [ (0., [| 2. |]); (1., [| 2. |]) ] in
  let trace = Trace.create () in
  ignore (Driver.run ~trace (fifo_policy ~target:(fun _ -> 0) ()) inst);
  let count p = List.length (List.filter p (Trace.events trace)) in
  Alcotest.(check int) "dispatches" 2
    (count (fun e -> match e.Trace.event with Trace.Dispatch _ -> true | _ -> false));
  Alcotest.(check int) "starts" 2
    (count (fun e -> match e.Trace.event with Trace.Start _ -> true | _ -> false));
  Alcotest.(check int) "completions" 2
    (count (fun e -> match e.Trace.event with Trace.Complete _ -> true | _ -> false))

let test_queue_profile () =
  let inst = Test_util.instance [ (0., [| 2. |]); (0., [| 2. |]) ] in
  let trace = Trace.create () in
  ignore (Driver.run ~trace (fifo_policy ~target:(fun _ -> 0) ()) inst);
  match Trace.queue_profile trace ~machines:1 with
  | [ (0, steps) ] ->
      let counts = List.map snd steps in
      Alcotest.(check (list int)) "U profile" [ 1; 2; 1; 0 ] counts
  | _ -> Alcotest.fail "profile shape"

let test_determinism () =
  let gen = Sched_workload.Suite.flow_uniform ~n:60 ~m:3 in
  let inst = Sched_workload.Gen.instance gen ~seed:4 in
  let s1 = Driver.run_schedule (fifo_policy ()) inst in
  let s2 = Driver.run_schedule (fifo_policy ()) inst in
  Alcotest.(check (float 0.)) "identical flow" (Test_util.total_flow s1) (Test_util.total_flow s2)

let test_random_instances_valid () =
  QCheck.Test.make ~name:"driver schedules validate on random instances" ~count:30
    QCheck.(pair small_nat (int_bound 1000))
    (fun (n, seed) ->
      let n = max 1 (n mod 40) in
      let gen = Sched_workload.Suite.flow_uniform ~n ~m:3 in
      let inst = Sched_workload.Gen.instance gen ~seed in
      let s = Driver.run_schedule (fifo_policy ()) inst in
      match Schedule.validate s with Ok () -> true | Error _ -> false)
  |> QCheck_alcotest.to_alcotest

let suite =
  [
    Alcotest.test_case "single job" `Quick test_single_job;
    Alcotest.test_case "fifo sequencing" `Quick test_fifo_sequencing;
    Alcotest.test_case "machine speed factor" `Quick test_machine_speed;
    Alcotest.test_case "execution speed" `Quick test_exec_speed;
    Alcotest.test_case "mid-run rejection" `Quick test_midrun_rejection;
    Alcotest.test_case "pending rejection" `Quick test_pending_rejection;
    Alcotest.test_case "self rejection" `Quick test_self_rejection;
    Alcotest.test_case "invalid dispatch raises" `Quick test_invalid_dispatch_raises;
    Alcotest.test_case "ineligible dispatch raises" `Quick test_ineligible_dispatch_raises;
    Alcotest.test_case "unknown rejection raises" `Quick test_unknown_rejection_raises;
    Alcotest.test_case "trace event counts" `Quick test_trace_event_counts;
    Alcotest.test_case "queue profile" `Quick test_queue_profile;
    Alcotest.test_case "determinism" `Quick test_determinism;
    test_random_instances_valid ();
  ]
