open Sched_model

(* One machine (alpha defaults to 3), three jobs:
   job 0: r=0 p=2 -> runs [0,2), flow 2
   job 1: r=0 p=4 -> runs [2,6), flow 6, weight 2
   job 2: r=1 p=9 -> rejected at t=3 after running never, flow 2. *)
let fixture () =
  let inst =
    Test_util.weighted_instance
      [ (0., 1., [| 2. |]); (0., 2., [| 4. |]); (1., 4., [| 9. |]) ]
  in
  let b = Schedule.builder inst in
  Schedule.add_segment b { Schedule.job = 0; machine = 0; start = 0.; stop = 2.; speed = 1. };
  Schedule.set_outcome b 0 (Outcome.Completed { machine = 0; start = 0.; speed = 1.; finish = 2. });
  Schedule.add_segment b { Schedule.job = 1; machine = 0; start = 2.; stop = 6.; speed = 1. };
  Schedule.set_outcome b 1 (Outcome.Completed { machine = 0; start = 2.; speed = 1.; finish = 6. });
  Schedule.set_outcome b 2 (Outcome.Rejected { time = 3.; assigned_to = Some 0; was_running = false });
  Schedule.finalize b

let test_flow () =
  let f = Metrics.flow (fixture ()) in
  Alcotest.(check (float 1e-9)) "total" 8. f.Metrics.total;
  Alcotest.(check (float 1e-9)) "weighted" (2. +. (2. *. 6.)) f.Metrics.weighted;
  Alcotest.(check (float 1e-9)) "with rejected" 10. f.Metrics.total_with_rejected;
  Alcotest.(check (float 1e-9)) "weighted with rejected" (14. +. (4. *. 2.))
    f.Metrics.weighted_with_rejected;
  Alcotest.(check (float 1e-9)) "max flow" 6. f.Metrics.max_flow;
  Alcotest.(check (float 1e-9)) "mean flow" 4. f.Metrics.mean_flow;
  Alcotest.(check (float 1e-9)) "max stretch" 1.5 f.Metrics.max_stretch

let test_flow_time_of () =
  let s = fixture () in
  Alcotest.(check (float 1e-9)) "job 0" 2. (Metrics.flow_time_of s 0);
  Alcotest.(check (float 1e-9)) "job 2 (rejected)" 2. (Metrics.flow_time_of s 2)

let test_makespan () = Alcotest.(check (float 1e-9)) "makespan" 6. (Metrics.makespan (fixture ()))

let test_rejection () =
  let r = Metrics.rejection (fixture ()) in
  Alcotest.(check int) "count" 1 r.Metrics.count;
  Alcotest.(check (float 1e-9)) "fraction" (1. /. 3.) r.Metrics.fraction;
  Alcotest.(check (float 1e-9)) "weight" 4. r.Metrics.weight;
  Alcotest.(check (float 1e-9)) "weight fraction" (4. /. 7.) r.Metrics.weight_fraction;
  Alcotest.(check int) "mid-run" 0 r.Metrics.mid_run

let test_energy_exclusive () =
  (* alpha = 3: energy of [0,2) at speed 1 plus [2,6) at speed 1 = 6. *)
  Alcotest.(check (float 1e-9)) "energy" 6. (Metrics.energy (fixture ()))

let test_energy_speed () =
  let inst = Test_util.weighted_instance ~alpha:2. [ (0., 1., [| 6. |]) ] in
  let b = Schedule.builder inst in
  Schedule.add_segment b { Schedule.job = 0; machine = 0; start = 0.; stop = 2.; speed = 3. };
  Schedule.set_outcome b 0 (Outcome.Completed { machine = 0; start = 0.; speed = 3.; finish = 2. });
  let s = Schedule.finalize b in
  (* alpha=2, speed 3 for 2 time units: 9 * 2 = 18. *)
  Alcotest.(check (float 1e-9)) "energy speed^alpha*t" 18. (Metrics.energy s)

let test_energy_parallel_superadditive () =
  (* Two overlapping unit-speed segments on one alpha=2 machine: aggregate
     speed 2 on the overlap, so energy uses (1+1)^2, not 1+1. *)
  let inst =
    Test_util.deadline_instance ~alpha:2. [ (0., 4., [| 2. |]); (0., 4., [| 2. |]) ]
  in
  let b = Schedule.builder inst in
  Schedule.add_segment b { Schedule.job = 0; machine = 0; start = 0.; stop = 2.; speed = 1. };
  Schedule.set_outcome b 0 (Outcome.Completed { machine = 0; start = 0.; speed = 1.; finish = 2. });
  Schedule.add_segment b { Schedule.job = 1; machine = 0; start = 1.; stop = 3.; speed = 1. };
  Schedule.set_outcome b 1 (Outcome.Completed { machine = 0; start = 1.; speed = 1.; finish = 3. });
  let s = Schedule.finalize b in
  (* [0,1): 1, [1,2): 4, [2,3): 1 -> 6. *)
  Alcotest.(check (float 1e-9)) "parallel energy" 6. (Metrics.energy s)

let test_flow_plus_energy () =
  let s = fixture () in
  Alcotest.(check (float 1e-9)) "objective" ((Metrics.flow s).Metrics.weighted +. 6.)
    (Metrics.flow_plus_energy s)

let test_busy_and_utilization () =
  let s = fixture () in
  Alcotest.(check (float 1e-9)) "busy" 6. (Metrics.busy_time s 0);
  Alcotest.(check (float 1e-9)) "utilization" 1. (Metrics.utilization s 0)

let test_busy_merges_overlap () =
  let inst =
    Test_util.deadline_instance ~alpha:2. [ (0., 4., [| 2. |]); (0., 4., [| 2. |]) ]
  in
  let b = Schedule.builder inst in
  Schedule.add_segment b { Schedule.job = 0; machine = 0; start = 0.; stop = 2.; speed = 1. };
  Schedule.set_outcome b 0 (Outcome.Completed { machine = 0; start = 0.; speed = 1.; finish = 2. });
  Schedule.add_segment b { Schedule.job = 1; machine = 0; start = 1.; stop = 3.; speed = 1. };
  Schedule.set_outcome b 1 (Outcome.Completed { machine = 0; start = 1.; speed = 1.; finish = 3. });
  let s = Schedule.finalize b in
  Alcotest.(check (float 1e-9)) "merged busy time" 3. (Metrics.busy_time s 0)

let suite =
  [
    Alcotest.test_case "flow metrics" `Quick test_flow;
    Alcotest.test_case "flow_time_of" `Quick test_flow_time_of;
    Alcotest.test_case "makespan" `Quick test_makespan;
    Alcotest.test_case "rejection metrics" `Quick test_rejection;
    Alcotest.test_case "energy exclusive" `Quick test_energy_exclusive;
    Alcotest.test_case "energy speed^alpha" `Quick test_energy_speed;
    Alcotest.test_case "energy parallel superadditive" `Quick test_energy_parallel_superadditive;
    Alcotest.test_case "flow plus energy" `Quick test_flow_plus_energy;
    Alcotest.test_case "busy time and utilization" `Quick test_busy_and_utilization;
    Alcotest.test_case "busy time merges overlap" `Quick test_busy_merges_overlap;
  ]

let test_fractional_below_integral () =
  (* Fractional flow is always at most the integral flow. *)
  let gen = Sched_workload.Suite.flow_pareto ~n:60 ~m:2 in
  let inst = Sched_workload.Gen.instance gen ~seed:11 in
  let s = Sched_sim.Driver.run_schedule Sched_baselines.Greedy_dispatch.spt inst in
  let frac = Metrics.fractional_flow s in
  let full = (Metrics.flow s).Metrics.total in
  Alcotest.(check bool)
    (Printf.sprintf "frac %.1f <= flow %.1f" frac full)
    true (frac <= full +. 1e-9);
  Alcotest.(check bool) "at least half (waiting dominates execution halving)" true
    (frac >= 0.5 *. full -. 1e-9)

let test_flow_values_shapes () =
  let inst = Test_util.instance [ (0., [| 2. |]); (0., [| 50. |]); (1., [| 1. |]) ] in
  let s, _ = Rejection.Flow_reject.run (Rejection.Flow_reject.config ~eps:0.5 ~rule2:false ()) inst in
  let completed = Metrics.flow_values s in
  let all = Metrics.flow_values ~include_rejected:true s in
  Alcotest.(check bool) "rejected excluded by default" true
    (Array.length completed <= Array.length all);
  Array.iter (fun v -> Alcotest.(check bool) "non-negative" true (v >= 0.)) all

let suite =
  suite
  @ [
      Alcotest.test_case "fractional <= integral flow" `Quick test_fractional_below_integral;
      Alcotest.test_case "flow_values shapes" `Quick test_flow_values_shapes;
    ]
