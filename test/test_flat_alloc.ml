(* Allocation-regression gate for the flat core: the driver's own
   bookkeeping on the hot path must stay allocation-free.  A mid-size
   run's minor-words-per-event figure is read back from the driver's
   telemetry counters and held under a fixed ceiling, so any future edit
   that re-introduces boxing on the hot path (a mutable float field, an
   eagerly built trace event, a list where an array belongs) fails
   `dune runtest` instead of silently eroding the performance win.

   What remains under the ceiling is the irreducible per-event cost of
   the *policy interface* — decision records, [Some job] view answers,
   span closures — which the issue pins as unchanged.  [Gc.minor_words]
   counts words allocated, not collector activity, so the figure is
   deterministic for a fixed instance and policy and the gates can sit
   close to the measured values. *)

open Sched_model
open Sched_sim
module Rng = Sched_stats.Rng
module Obs = Sched_obs.Obs
module Registry = Sched_obs.Registry
module Metric = Sched_obs.Metric

(* Spread releases (not the dyadic differential generator): short queues,
   so the figure reflects the per-event code path rather than policy
   scans over deep pending sets. *)
let make_instance ~seed ~n ~m =
  let rng = Rng.create seed in
  let jobs =
    List.init n (fun id ->
        let release = float_of_int (Rng.int rng (4 * n)) /. 4. in
        let sizes = Array.init m (fun _ -> float_of_int (1 + Rng.int rng 32) /. 4.) in
        let weight = float_of_int (1 + Rng.int rng 16) /. 4. in
        Job.create ~id ~release ~weight ~sizes ())
  in
  Instance.create ~machines:(Machine.fleet m) ~jobs ()

let run_and_measure ?recorder ~n ~m policy =
  let instance = make_instance ~seed:7 ~n ~m in
  let registry = Registry.create () in
  let obs = Obs.create ~registry () in
  ignore (Driver.run_schedule ?recorder ~obs ~impl:Driver.Flat policy instance);
  let words =
    Metric.Counter.value (Registry.counter registry "sched_flat_loop_minor_words_total")
  in
  let events =
    Metric.Counter.value (Registry.counter registry "sched_flat_loop_events_total")
  in
  (words, events)

let check_gate ?recorder ~what ~gate policy =
  (* Warm-up run pays one-time lazy initialization. *)
  ignore (run_and_measure ~n:500 ~m:4 policy);
  let words, events = run_and_measure ?recorder ~n:4000 ~m:4 policy in
  (* At least one arrival per job; rejected-before-start jobs push no
     finish event. *)
  Alcotest.(check bool) "events counted" true (events >= 4000.);
  let per_event = words /. events in
  if per_event > gate then
    Alcotest.failf
      "%s: flat loop allocates %.1f minor words/event (gate %.1f): the hot path is boxing again"
      what per_event gate

(* Measured ~58 words/event (all policy-interface cost; the boxed core
   runs ~130 on the same instance). *)
let test_steady_state_allocs () =
  check_gate ~what:"greedy-spt" ~gate:80. Sched_baselines.Greedy_dispatch.spt

(* The rejection path through the loop is separate code; flow-reject also
   pays for its per-arrival candidate scan.  Measured ~70 words/event. *)
let test_steady_state_allocs_reject () =
  let module FR = Rejection.Flow_reject in
  check_gate ~what:"flow-reject" ~gate:100. (FR.policy (FR.config ~eps:0.3 ()))

(* The same ceilings must hold with a flight recorder attached: its write
   path is allocation-free by construction (int-only [reserve_*] calls
   plus direct stores into the hoisted float backing array).  Under the
   dev profile's [-opaque] the [Flat_state] float accessors feeding the
   recorder's payload are not inlined, so each boxes its return — a few
   words/event of build-mode (not code-path) cost; the release-profile
   bench pins the true zero.  greedy-spt absorbs it inside its existing
   gate; flow-reject's provenance payload reads more accessors (measured
   ~102 dev vs ~70 bare), so its recorder gate sits a notch higher. *)
let test_steady_state_allocs_recorded () =
  let recorder = Sched_obs.Recorder.create ~capacity:4096 () in
  check_gate ~recorder ~what:"greedy-spt+recorder" ~gate:80.
    Sched_baselines.Greedy_dispatch.spt;
  Alcotest.(check bool) "events recorded" true (Sched_obs.Recorder.total recorder > 0)

let test_steady_state_allocs_reject_recorded () =
  let module FR = Rejection.Flow_reject in
  let recorder = Sched_obs.Recorder.create ~capacity:4096 () in
  check_gate ~recorder ~what:"flow-reject+recorder" ~gate:110.
    (FR.policy (FR.config ~eps:0.3 ()))

(* Counters are absent unless the flat core actually ran: the boxed core
   must not register them, so a dashboard can tell the cores apart. *)
let test_counters_flat_only () =
  let instance = make_instance ~seed:11 ~n:50 ~m:2 in
  let registry = Registry.create () in
  let obs = Obs.create ~registry () in
  ignore
    (Driver.run_schedule ~obs ~impl:Driver.Boxed Sched_baselines.Greedy_dispatch.spt instance);
  let words =
    Metric.Counter.value (Registry.counter registry "sched_flat_loop_minor_words_total")
  in
  Alcotest.(check (float 0.)) "boxed run registers no flat counters" 0. words

let suite =
  [
    Alcotest.test_case "steady-state minor words/event under gate" `Quick test_steady_state_allocs;
    Alcotest.test_case "rejection path under gate" `Quick test_steady_state_allocs_reject;
    Alcotest.test_case "recorder attached stays under gate" `Quick
      test_steady_state_allocs_recorded;
    Alcotest.test_case "recorder attached, rejection path" `Quick
      test_steady_state_allocs_reject_recorded;
    Alcotest.test_case "flat counters only on flat runs" `Quick test_counters_flat_only;
  ]
