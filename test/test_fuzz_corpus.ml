(* Seed-corpus replay: every checked-in case in test/fuzz_corpus must
   parse, match the built-in seed list byte-for-byte (no silent drift),
   and run oracle-clean under its named policy. *)

open Sched_model
module Corpus = Sched_fuzz.Corpus
module Fuzz = Sched_fuzz.Fuzz
module P = Sched_experiments.Policy_registry

let corpus_dir = "fuzz_corpus"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let corpus_files () =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".case")
  |> List.sort String.compare

let test_seed_list () =
  let seeds = Corpus.seeds () in
  Alcotest.(check int) "ten seed cases" 10 (List.length seeds);
  let names = List.map (fun c -> c.Corpus.name) seeds in
  Alcotest.(check int) "names distinct" (List.length names)
    (List.length (List.sort_uniq String.compare names));
  List.iter
    (fun c ->
      Alcotest.(check string) "filename shape" (c.Corpus.name ^ ".case") (Corpus.filename c))
    seeds

let test_round_trip () =
  List.iter
    (fun c ->
      match Corpus.parse (Corpus.render c) with
      | Error e -> Alcotest.failf "%s does not round-trip: %s" c.Corpus.name e
      | Ok c' ->
          Alcotest.(check string) "name" c.Corpus.name c'.Corpus.name;
          Alcotest.(check string) "policy" c.Corpus.policy c'.Corpus.policy;
          Alcotest.(check string) "instance"
            (Serialize.instance_to_string c.Corpus.instance)
            (Serialize.instance_to_string c'.Corpus.instance))
    (Corpus.seeds ())

let test_files_match_seeds () =
  let seeds = Corpus.seeds () in
  Alcotest.(check (list string)) "exactly the seed files on disk"
    (List.sort String.compare (List.map Corpus.filename seeds))
    (corpus_files ());
  List.iter
    (fun c ->
      let path = Filename.concat corpus_dir (Corpus.filename c) in
      Alcotest.(check string)
        (Printf.sprintf "%s matches --write-seed-corpus output" (Corpus.filename c))
        (Corpus.render c) (read_file path))
    seeds

let test_replay_clean () =
  List.iter
    (fun file ->
      let path = Filename.concat corpus_dir file in
      match Corpus.parse (read_file path) with
      | Error e -> Alcotest.failf "%s: parse error: %s" file e
      | Ok c -> (
          match P.find c.Corpus.policy with
          | None -> Alcotest.failf "%s names unknown policy %s" file c.Corpus.policy
          | Some entry -> (
              match Fuzz.property_fails entry "oracle" c.Corpus.instance with
              | None -> ()
              | Some d -> Alcotest.failf "%s: %s is no longer oracle-clean: %s" file c.Corpus.policy d)))
    (corpus_files ())

let suite =
  [
    Alcotest.test_case "seed list shape" `Quick test_seed_list;
    Alcotest.test_case "render/parse round-trip" `Quick test_round_trip;
    Alcotest.test_case "checked-in files match seeds" `Quick test_files_match_seeds;
    Alcotest.test_case "replay oracle-clean" `Quick test_replay_clean;
  ]
