open Sched_model

let raises_invalid f =
  try
    ignore (f ());
    false
  with Invalid_argument _ -> true

(* --- Job --- *)

let test_job_create () =
  let j = Job.create ~id:0 ~release:1. ~weight:2. ~sizes:[| 3.; 5. |] () in
  Alcotest.(check (float 0.)) "size 0" 3. (Job.size j 0);
  Alcotest.(check (float 0.)) "size 1" 5. (Job.size j 1);
  Alcotest.(check (float 0.)) "min size" 3. (Job.min_size j);
  Alcotest.(check int) "best machine" 0 (Job.best_machine j);
  Alcotest.(check bool) "eligible" true (Job.eligible j 1)

let test_job_restricted () =
  let j = Job.create ~id:0 ~release:0. ~sizes:[| Float.infinity; 4. |] () in
  Alcotest.(check bool) "machine 0 ineligible" false (Job.eligible j 0);
  Alcotest.(check int) "best machine" 1 (Job.best_machine j);
  Alcotest.(check (float 0.)) "min size" 4. (Job.min_size j)

let test_job_validation () =
  Alcotest.(check bool) "negative release" true
    (raises_invalid (fun () -> Job.create ~id:0 ~release:(-1.) ~sizes:[| 1. |] ()));
  Alcotest.(check bool) "zero size" true
    (raises_invalid (fun () -> Job.create ~id:0 ~release:0. ~sizes:[| 0. |] ()));
  Alcotest.(check bool) "all infinite" true
    (raises_invalid (fun () -> Job.create ~id:0 ~release:0. ~sizes:[| Float.infinity |] ()));
  Alcotest.(check bool) "empty sizes" true
    (raises_invalid (fun () -> Job.create ~id:0 ~release:0. ~sizes:[||] ()));
  Alcotest.(check bool) "bad weight" true
    (raises_invalid (fun () -> Job.create ~id:0 ~release:0. ~weight:0. ~sizes:[| 1. |] ()));
  Alcotest.(check bool) "deadline before release" true
    (raises_invalid (fun () -> Job.create ~id:0 ~release:5. ~deadline:5. ~sizes:[| 1. |] ()))

let test_job_span () =
  let j = Job.create ~id:0 ~release:2. ~deadline:10. ~sizes:[| 1. |] () in
  Alcotest.(check (option (float 1e-12))) "span" (Some 8.) (Job.span j)

let test_job_order () =
  let a = Job.create ~id:0 ~release:1. ~sizes:[| 1. |] () in
  let b = Job.create ~id:1 ~release:1. ~sizes:[| 1. |] () in
  let c = Job.create ~id:2 ~release:0.5 ~sizes:[| 1. |] () in
  Alcotest.(check bool) "release order" true (Job.compare_by_release c a < 0);
  Alcotest.(check bool) "tie by id" true (Job.compare_by_release a b < 0)

(* --- Machine --- *)

let test_machine () =
  let m = Machine.create ~id:3 ~speed:2. ~alpha:2.5 () in
  Alcotest.(check int) "id" 3 m.Machine.id;
  Alcotest.(check (float 0.)) "speed" 2. m.Machine.speed;
  let m' = Machine.with_speed m 4. in
  Alcotest.(check (float 0.)) "with_speed" 4. m'.Machine.speed;
  Alcotest.(check (float 0.)) "alpha kept" 2.5 m'.Machine.alpha;
  Alcotest.(check bool) "bad speed" true (raises_invalid (fun () -> Machine.create ~id:0 ~speed:0. ()));
  Alcotest.(check bool) "bad alpha" true (raises_invalid (fun () -> Machine.create ~id:0 ~alpha:0.5 ()));
  let fleet = Machine.fleet 4 in
  Alcotest.(check int) "fleet size" 4 (Array.length fleet);
  Array.iteri (fun i (mc : Machine.t) -> Alcotest.(check int) "fleet ids" i mc.Machine.id) fleet

(* --- Instance --- *)

let test_instance_basics () =
  let inst =
    Test_util.instance ~machines:2 [ (0., [| 2.; 3. |]); (1., [| 4.; 1. |]); (0.5, [| 5.; 5. |]) ]
  in
  Alcotest.(check int) "n" 3 (Instance.n inst);
  Alcotest.(check int) "m" 2 (Instance.m inst);
  Alcotest.(check (float 1e-12)) "total weight" 3. (Instance.total_weight inst);
  Alcotest.(check (float 1e-12)) "min volume" (2. +. 1. +. 5.) (Instance.total_min_volume inst);
  Alcotest.(check (float 1e-12)) "delta" 5. (Instance.delta inst);
  Alcotest.(check bool) "no deadlines" false (Instance.has_deadlines inst);
  (* Jobs sorted by release. *)
  let jobs = Instance.jobs_by_release inst in
  Alcotest.(check (list int)) "release order" [ 0; 2; 1 ]
    (Array.to_list (Array.map (fun (j : Job.t) -> j.Job.id) jobs));
  (* Lookup by id works even when order differs. *)
  Alcotest.(check (float 0.)) "job lookup" 4. (Job.size (Instance.job inst 1) 0)

let test_instance_validation () =
  Alcotest.(check bool) "size vector mismatch" true
    (raises_invalid (fun () ->
         Instance.create ~machines:(Machine.fleet 2)
           ~jobs:[ Job.create ~id:0 ~release:0. ~sizes:[| 1. |] () ]
           ()));
  Alcotest.(check bool) "duplicate ids" true
    (raises_invalid (fun () ->
         Instance.create ~machines:(Machine.fleet 1)
           ~jobs:
             [
               Job.create ~id:0 ~release:0. ~sizes:[| 1. |] ();
               Job.create ~id:0 ~release:1. ~sizes:[| 1. |] ();
             ]
           ()));
  Alcotest.(check bool) "gap in ids" true
    (raises_invalid (fun () ->
         Instance.create ~machines:(Machine.fleet 1)
           ~jobs:[ Job.create ~id:1 ~release:0. ~sizes:[| 1. |] () ]
           ()));
  Alcotest.(check bool) "no machines" true
    (raises_invalid (fun () -> Instance.create ~machines:[||] ~jobs:[] ()))

let test_instance_horizon () =
  let inst = Test_util.instance [ (10., [| 2. |]); (0., [| 3. |]) ] in
  Alcotest.(check bool) "horizon covers everything" true (Instance.horizon inst >= 15.)

(* --- Time --- *)

let test_time () =
  Alcotest.(check bool) "equal with tolerance" true (Time.equal 1. (1. +. 1e-12));
  Alcotest.(check bool) "lt strict" true (Time.lt 1. 1.1);
  Alcotest.(check bool) "lt not for close" false (Time.lt 1. (1. +. 1e-12));
  Alcotest.(check bool) "leq" true (Time.leq 1.1 1.1);
  Alcotest.(check bool) "nonneg tolerance" true (Time.nonneg (-1e-12));
  Alcotest.(check bool) "nonneg strict" false (Time.nonneg (-1.))

(* --- Outcome --- *)

let test_outcome () =
  let j = Job.create ~id:0 ~release:2. ~sizes:[| 3. |] () in
  let completed = Outcome.Completed { machine = 0; start = 2.; speed = 1.; finish = 5. } in
  let rejected = Outcome.Rejected { time = 4.; assigned_to = Some 0; was_running = true } in
  Alcotest.(check bool) "completed" true (Outcome.is_completed completed);
  Alcotest.(check bool) "rejected" true (Outcome.is_rejected rejected);
  Alcotest.(check (float 0.)) "flow completed" 3. (Outcome.flow_time j completed);
  Alcotest.(check (float 0.)) "flow rejected" 2. (Outcome.flow_time j rejected);
  Alcotest.(check (float 0.)) "end time" 4. (Outcome.end_time rejected)

let suite =
  [
    Alcotest.test_case "job create" `Quick test_job_create;
    Alcotest.test_case "job restricted" `Quick test_job_restricted;
    Alcotest.test_case "job validation" `Quick test_job_validation;
    Alcotest.test_case "job span" `Quick test_job_span;
    Alcotest.test_case "job order" `Quick test_job_order;
    Alcotest.test_case "machine" `Quick test_machine;
    Alcotest.test_case "instance basics" `Quick test_instance_basics;
    Alcotest.test_case "instance validation" `Quick test_instance_validation;
    Alcotest.test_case "instance horizon" `Quick test_instance_horizon;
    Alcotest.test_case "time comparisons" `Quick test_time;
    Alcotest.test_case "outcome" `Quick test_outcome;
  ]
