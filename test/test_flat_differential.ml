(* Flat-vs-boxed differential layer: the flat core must produce schedules
   byte-identical (canonical serialization) to the boxed reference, with
   bit-identical live metrics, for every corpus case x registry policy and
   for a few hundred fresh fuzzer-generated scenarios — with the oracle
   auditing both sides. *)

open Sched_model
open Sched_sim
module P = Sched_experiments.Policy_registry
module Scenario = Sched_fuzz.Scenario
module Corpus = Sched_fuzz.Corpus

(* Bit-identical float equality: the flat core copies the boxed driver's
   accumulation order verbatim, so even the live metrics must agree exactly,
   not just to tolerance. *)
let check_f what a b =
  if not (Float.equal a b) then
    Alcotest.failf "%s: boxed %.17g <> flat %.17g" what a b

let check_pair ~what (e : P.entry) instance =
  (* The driver's audit checks deadlines whenever the instance carries
     them, and most registry policies ignore deadlines — the fuzzer runs
     those pairings with [check_deadlines:false] for the same reason.  The
     in-driver audit has no such knob, so deadline-bearing instances are
     compared un-audited (the byte-identity check is the point here). *)
  let check = not (Instance.has_deadlines instance) in
  let sb, lb = e.P.run_impl ~impl:Driver.Boxed ~check instance in
  let sf, lf = e.P.run_impl ~impl:Driver.Flat ~check instance in
  let cb = Serialize.schedule_to_canonical_string sb in
  let cf = Serialize.schedule_to_canonical_string sf in
  if not (String.equal cb cf) then
    Alcotest.failf "%s: flat schedule diverges from boxed:\n--- boxed ---\n%s\n--- flat ---\n%s"
      what cb cf;
  let open Metrics in
  check_f (what ^ ": flow.total") lb.Driver.flow.total lf.Driver.flow.total;
  check_f (what ^ ": flow.weighted") lb.Driver.flow.weighted lf.Driver.flow.weighted;
  check_f
    (what ^ ": flow.total_with_rejected")
    lb.Driver.flow.total_with_rejected lf.Driver.flow.total_with_rejected;
  check_f
    (what ^ ": flow.weighted_with_rejected")
    lb.Driver.flow.weighted_with_rejected lf.Driver.flow.weighted_with_rejected;
  check_f (what ^ ": flow.max_flow") lb.Driver.flow.max_flow lf.Driver.flow.max_flow;
  check_f (what ^ ": flow.mean_flow") lb.Driver.flow.mean_flow lf.Driver.flow.mean_flow;
  check_f (what ^ ": flow.max_stretch") lb.Driver.flow.max_stretch lf.Driver.flow.max_stretch;
  check_f (what ^ ": energy") lb.Driver.energy lf.Driver.energy;
  check_f (what ^ ": makespan") lb.Driver.makespan lf.Driver.makespan;
  Alcotest.(check int)
    (what ^ ": rejection.count")
    lb.Driver.rejection.count lf.Driver.rejection.count;
  check_f (what ^ ": rejection.fraction") lb.Driver.rejection.fraction lf.Driver.rejection.fraction;
  check_f (what ^ ": rejection.weight") lb.Driver.rejection.weight lf.Driver.rejection.weight;
  check_f
    (what ^ ": rejection.weight_fraction")
    lb.Driver.rejection.weight_fraction lf.Driver.rejection.weight_fraction;
  Alcotest.(check int)
    (what ^ ": rejection.mid_run")
    lb.Driver.rejection.mid_run lf.Driver.rejection.mid_run

(* Every corpus case under every registry policy, not just the case's own:
   the corpus instances are the fuzzer's distilled tie-heavy / restricted /
   adversarial corners, exactly where a layout or tie-break divergence
   would surface. *)
let test_corpus_all_policies () =
  let cases = Corpus.seeds () in
  Alcotest.(check int) "ten corpus cases" 10 (List.length cases);
  List.iter
    (fun (c : Corpus.case) ->
      List.iter
        (fun (e : P.entry) ->
          check_pair ~what:(Printf.sprintf "%s/%s" c.Corpus.name e.P.name) e c.Corpus.instance)
        P.all)
    cases

(* Fresh scenario generations: the fuzzer's base worklist plus one mutation
   ring, deduplicated by label, capped at 200 — policies assigned
   round-robin so every entry sees a spread of families. *)
let scenarios limit =
  let base = Scenario.base ~seed:2026 in
  let ring = List.concat_map Scenario.mutants base in
  let seen = Hashtbl.create 256 in
  let uniq =
    List.filter
      (fun s ->
        let l = Scenario.label s in
        if Hashtbl.mem seen l then false
        else begin
          Hashtbl.add seen l ();
          true
        end)
      (base @ ring)
  in
  List.filteri (fun k _ -> k < limit) uniq

let test_fresh_scenarios () =
  let scns = scenarios 200 in
  Alcotest.(check int) "two hundred fresh scenarios" 200 (List.length scns);
  let entries = Array.of_list P.all in
  List.iteri
    (fun k s ->
      let e = entries.(k mod Array.length entries) in
      let what = Printf.sprintf "%s/%s" (Scenario.label s) e.P.name in
      check_pair ~what e (Scenario.instance s))
    scns

(* The dyadic random generator used by the rest of the differential suite,
   as a third independent source of instances. *)
let test_random_instances () =
  let entries = Array.of_list P.all in
  for seed = 0 to 19 do
    let weighted = seed mod 2 = 1 and restricted = seed mod 3 = 0 in
    let instance =
      Test_util.random_instance ~weighted ~restricted ~seed ~n:(20 + (7 * seed)) ~m:(1 + (seed mod 4)) ()
    in
    let e = entries.(seed mod Array.length entries) in
    check_pair ~what:(Printf.sprintf "random/s%d/%s" seed e.P.name) e instance
  done

let suite =
  [
    ("corpus x all policies, byte-identical", `Slow, test_corpus_all_policies);
    ("200 fresh scenarios, byte-identical", `Slow, test_fresh_scenarios);
    ("dyadic random instances, byte-identical", `Quick, test_random_instances);
  ]
