(* Smoke tests for every pretty-printer: formatting must never raise and
   must contain the load-bearing numbers. *)

open Sched_model

let render pp v = Format.asprintf "%a" pp v

let test_job_pp () =
  let j = Job.create ~id:3 ~release:1.5 ~weight:2. ~deadline:9. ~sizes:[| 2.; Float.infinity |] () in
  let out = render Job.pp j in
  Alcotest.(check bool) "mentions id and deadline" true
    (Test_util.contains out "job#3" && Test_util.contains out "d=9")

let test_machine_pp () =
  let m = Machine.create ~id:1 ~speed:2. ~alpha:2.5 () in
  Alcotest.(check bool) "fields" true (Test_util.contains (render Machine.pp m) "speed=2")

let test_instance_pp_stats () =
  let inst = Test_util.instance ~machines:2 [ (0., [| 2.; 3. |]) ] in
  let out = render Instance.pp_stats inst in
  Alcotest.(check bool) "n and m" true (Test_util.contains out "n=1" && Test_util.contains out "m=2")

let test_outcome_pp () =
  let c = Outcome.Completed { machine = 0; start = 1.; speed = 2.; finish = 3. } in
  let r = Outcome.Rejected { time = 4.; assigned_to = Some 1; was_running = true } in
  Alcotest.(check bool) "completed" true (Test_util.contains (render Outcome.pp c) "completed");
  Alcotest.(check bool) "rejected mid-run" true (Test_util.contains (render Outcome.pp r) "mid-run")

let test_summary_pp () =
  let s = Sched_stats.Summary.of_list [ 1.; 2.; 3. ] in
  Alcotest.(check bool) "mean present" true
    (Test_util.contains (render Sched_stats.Summary.pp s) "mean=2")

let test_trace_pp () =
  let entries =
    [
      { Sched_sim.Trace.time = 1.; event = Sched_sim.Trace.Dispatch { job = 0; machine = 1 } };
      { Sched_sim.Trace.time = 2.; event = Sched_sim.Trace.Start { job = 0; machine = 1; speed = 1. } };
      { Sched_sim.Trace.time = 3.; event = Sched_sim.Trace.Complete { job = 0; machine = 1 } };
      {
        Sched_sim.Trace.time = 4.;
        event = Sched_sim.Trace.Reject { job = 2; machine = 1; was_running = false; remaining = 5. };
      };
      { Sched_sim.Trace.time = 5.; event = Sched_sim.Trace.Restart { job = 3; machine = 0; wasted = 2. } };
    ]
  in
  List.iter
    (fun e ->
      let out = render Sched_sim.Trace.pp_entry e in
      Alcotest.(check bool) "non-empty" true (String.length out > 5))
    entries

let test_dual_fit_pp () =
  let gen = Sched_workload.Suite.flow_uniform ~n:30 ~m:2 in
  let inst = Sched_workload.Gen.instance gen ~seed:2 in
  let trace = Sched_sim.Trace.create () in
  let schedule, st = Rejection.Flow_reject.run ~trace (Rejection.Flow_reject.config ~eps:0.25 ()) inst in
  let r =
    Sched_lp.Dual_fit.certify
      ~eps:(Rejection.Flow_reject.effective_eps st)
      ~lambdas:(Rejection.Flow_reject.lambdas st)
      inst trace schedule
  in
  Alcotest.(check bool) "report renders" true
    (Test_util.contains (render Sched_lp.Dual_fit.pp_report r) "dual-fit")

let test_gen_describe () =
  let gen = Sched_workload.Suite.flow_diurnal ~n:10 ~m:2 in
  Alcotest.(check bool) "describe mentions arrivals" true
    (Test_util.contains (Sched_workload.Gen.describe gen) "diurnal")

let suite =
  [
    Alcotest.test_case "job pp" `Quick test_job_pp;
    Alcotest.test_case "machine pp" `Quick test_machine_pp;
    Alcotest.test_case "instance pp_stats" `Quick test_instance_pp_stats;
    Alcotest.test_case "outcome pp" `Quick test_outcome_pp;
    Alcotest.test_case "summary pp" `Quick test_summary_pp;
    Alcotest.test_case "trace pp" `Quick test_trace_pp;
    Alcotest.test_case "dual-fit pp" `Quick test_dual_fit_pp;
    Alcotest.test_case "gen describe" `Quick test_gen_describe;
  ]
