open Sched_model
module EG = Rejection.Energy_config_greedy

let test_single_job_spreads () =
  (* alpha > 1: running slower is cheaper, so a lone job uses its whole
     window: duration = span, speed = p / span. *)
  let inst = Test_util.deadline_instance ~alpha:3. [ (0., 4., [| 2. |]) ] in
  let r = EG.run inst in
  (match r.EG.assignments with
  | [ a ] ->
      Alcotest.(check int) "duration = span" 4 a.EG.duration;
      Alcotest.(check (float 1e-9)) "speed p/span" 0.5 a.EG.speed;
      Alcotest.(check (float 1e-9)) "marginal = energy" r.EG.energy a.EG.marginal
  | _ -> Alcotest.fail "one assignment");
  Alcotest.(check (float 1e-9)) "energy = (p/span)^a * span" (0.5 ** 3. *. 4.) r.EG.energy

let test_energy_matches_metrics () =
  let gen = Sched_workload.Suite.deadline_energy ~n:25 ~m:2 ~alpha:3. in
  let inst = Sched_workload.Gen.instance gen ~seed:8 in
  let r = EG.run inst in
  Alcotest.(check (float 1e-6)) "slot energy equals segment-sweep energy" r.EG.energy
    (Metrics.energy r.EG.schedule)

let test_marginals_telescope () =
  let gen = Sched_workload.Suite.deadline_energy ~n:20 ~m:2 ~alpha:2. in
  let inst = Sched_workload.Gen.instance gen ~seed:4 in
  let r = EG.run inst in
  let sum = List.fold_left (fun acc a -> acc +. a.EG.marginal) 0. r.EG.assignments in
  Alcotest.(check (float 1e-6)) "sum of marginals = final energy" r.EG.energy sum

let test_deadlines_respected () =
  let gen = Sched_workload.Suite.deadline_energy ~n:30 ~m:2 ~alpha:3. in
  let inst = Sched_workload.Gen.instance gen ~seed:13 in
  let r = EG.run inst in
  match Schedule.validate ~allow_parallel:true ~check_deadlines:true r.EG.schedule with
  | Ok () -> ()
  | Error es -> Alcotest.failf "violations: %s" (String.concat "; " es)

let test_greedy_avoids_contention () =
  (* Two identical jobs with disjoint feasible halves of a window would
     overlap if placed greedily at full span; the greedy must prefer the
     cheaper non-overlapping placement when it is cheaper.  With alpha = 2
     and span 4, overlapping at speed 0.5 costs (1)^2*... we simply check
     the greedy never does worse than fully-overlapped full-span
     placement. *)
  let inst =
    Test_util.deadline_instance ~alpha:2. [ (0., 4., [| 2. |]); (0., 4., [| 2. |]) ]
  in
  let r = EG.run inst in
  let overlapped = 2. *. (0.5 ** 2.) *. 4. *. 2. in
  (* = energy if both sat on top of each other ((0.5+0.5)^2*4 = 4) vs
     separate halves: 2 * (1^2 * 2) = 4... compute the actual bound: *)
  ignore overlapped;
  Alcotest.(check bool) "energy <= 4" true (r.EG.energy <= 4. +. 1e-9)

let test_respects_release_slots () =
  let inst = Test_util.deadline_instance ~alpha:3. [ (2., 6., [| 2. |]) ] in
  let r = EG.run inst in
  match r.EG.assignments with
  | [ a ] -> Alcotest.(check bool) "starts at/after release" true (a.EG.start_slot >= 2)
  | _ -> Alcotest.fail "one assignment"

let test_requires_deadlines () =
  let inst = Test_util.instance [ (0., [| 1. |]) ] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (EG.run inst);
       false
     with Invalid_argument _ -> true)

let test_within_alpha_alpha_of_yds () =
  QCheck.Test.make ~name:"greedy within alpha^alpha of YDS (m=1)" ~count:20
    QCheck.(pair (int_bound 1000) (int_range 2 3))
    (fun (seed, ai) ->
      let alpha = float_of_int ai in
      let gen = Sched_workload.Suite.deadline_energy ~n:20 ~m:1 ~alpha in
      let inst = Sched_workload.Gen.instance gen ~seed in
      let r = EG.run inst in
      let yds = Sched_energy.Yds.optimal_energy ~alpha (Sched_energy.Yds.of_instance inst ~machine:0) in
      r.EG.energy <= (Rejection.Bounds.energy_competitive ~alpha *. yds) +. 1e-6)
  |> QCheck_alcotest.to_alcotest

let test_continuous_single_job () =
  let st = EG.continuous ~alpha:3. () in
  let start, speed = EG.continuous_place st ~release:0. ~deadline:9. ~volume:3. in
  (* Lone job: cheapest is the whole window at speed volume/span. *)
  Alcotest.(check (float 1e-9)) "start 0" 0. start;
  Alcotest.(check (float 1e-6)) "min speed" (3. /. 9.) speed;
  Alcotest.(check (float 1e-6)) "energy" ((3. /. 9.) ** 3. *. 9.) (EG.continuous_energy st)

let test_continuous_accumulates () =
  let st = EG.continuous ~alpha:2. () in
  ignore (EG.continuous_place st ~release:0. ~deadline:2. ~volume:2.);
  let e1 = EG.continuous_energy st in
  ignore (EG.continuous_place st ~release:0. ~deadline:2. ~volume:2.);
  let e2 = EG.continuous_energy st in
  Alcotest.(check bool) "energy grows" true (e2 > e1);
  (* Two jobs forced into [0,2] with volume 2 each: total speed 2 over 2
     time units -> energy 8 if both spread fully. *)
  Alcotest.(check bool) "at least superadditive floor" true (e2 >= 4.)

let test_continuous_feasibility () =
  let st = EG.continuous ~alpha:3. ~grid:16 () in
  for k = 0 to 10 do
    let release = float_of_int k and deadline = float_of_int k +. 2. in
    let start, speed = EG.continuous_place st ~release ~deadline ~volume:1. in
    let finish = start +. (1. /. speed) in
    Alcotest.(check bool) "within window" true
      (start >= release -. 1e-9 && finish <= deadline +. 1e-9)
  done

let suite =
  [
    Alcotest.test_case "single job spreads over window" `Quick test_single_job_spreads;
    Alcotest.test_case "energy matches Metrics.energy" `Quick test_energy_matches_metrics;
    Alcotest.test_case "marginals telescope" `Quick test_marginals_telescope;
    Alcotest.test_case "deadlines respected" `Quick test_deadlines_respected;
    Alcotest.test_case "greedy avoids contention" `Quick test_greedy_avoids_contention;
    Alcotest.test_case "release slots respected" `Quick test_respects_release_slots;
    Alcotest.test_case "requires deadlines" `Quick test_requires_deadlines;
    test_within_alpha_alpha_of_yds ();
    Alcotest.test_case "continuous: lone job" `Quick test_continuous_single_job;
    Alcotest.test_case "continuous: accumulates" `Quick test_continuous_accumulates;
    Alcotest.test_case "continuous: feasibility" `Quick test_continuous_feasibility;
  ]

let test_custom_powers_nonconvex () =
  (* A step power function (non-convex at jumps): Theorem 3's greedy must
     still run, telescope its marginals, and prefer staying under a step
     threshold when that is free. *)
  let inst = Test_util.deadline_instance ~alpha:3. [ (0., 4., [| 2. |]); (0., 4., [| 2. |]) ] in
  let step = Sched_energy.Power.piecewise [ (1., 1.); (2., 10.) ] in
  let r = EG.run ~powers:[| step |] inst in
  Schedule.assert_valid ~allow_parallel:true r.EG.schedule;
  let telescoped = List.fold_left (fun acc a -> acc +. a.EG.marginal) 0. r.EG.assignments in
  Alcotest.(check (float 1e-9)) "marginals telescope under step power" r.EG.energy telescoped;
  (* Both jobs fit at total speed <= 1 (e.g. each over its own half), so
     the greedy should avoid the 10x step: energy <= 4 * P(1) = 4. *)
  Alcotest.(check bool)
    (Printf.sprintf "avoids the step (energy %.2f)" r.EG.energy)
    true (r.EG.energy <= 4. +. 1e-9)

let test_custom_powers_static () =
  (* Static power penalizes being on at all: a lone job should run fast
     and short rather than slow and long once static power dominates. *)
  let inst = Test_util.deadline_instance ~alpha:2. [ (0., 8., [| 2. |]) ] in
  let static = Sched_energy.Power.affine_polynomial ~alpha:2. ~static:10. in
  let r = EG.run ~powers:[| static |] inst in
  match r.EG.assignments with
  | [ a ] ->
      (* Energy for duration d: d * ((2/d)^2 + 10); minimized at d = ...
         (4/d + 10 d)' = -4/d^2 + 10 = 0 -> d = 0.63: integer optimum 1. *)
      Alcotest.(check int) "short and fast under static power" 1 a.EG.duration
  | _ -> Alcotest.fail "one assignment"

let test_edf_cross_checks_yds () =
  QCheck.Test.make ~name:"EDF min speed = YDS peak speed; feasibility flips there" ~count:30
    QCheck.(list_of_size (Gen.int_range 1 6) (triple (float_range 0. 8.) (float_range 0.5 4.) (float_range 0.5 4.)))
    (fun raw ->
      let jobs =
        List.map
          (fun (r, span, v) -> { Sched_energy.Yds.release = r; deadline = r +. span; volume = v })
          raw
      in
      let smin = Sched_energy.Edf.min_speed jobs in
      let peak = Sched_energy.Edf.yds_peak_speed ~alpha:3. jobs in
      Float.abs (smin -. peak) <= 1e-6 *. Float.max 1. smin
      && Sched_energy.Edf.feasible ~speed:(smin *. 1.001) jobs
      && ((not (Sched_energy.Edf.feasible ~speed:(smin *. 0.9) jobs)) || smin = 0.))
  |> QCheck_alcotest.to_alcotest

let test_edf_simple () =
  let jobs =
    [ { Sched_energy.Yds.release = 0.; deadline = 2.; volume = 2. };
      { Sched_energy.Yds.release = 0.; deadline = 4.; volume = 2. } ]
  in
  Alcotest.(check (float 1e-9)) "min speed" 1. (Sched_energy.Edf.min_speed jobs);
  Alcotest.(check bool) "feasible at 1" true (Sched_energy.Edf.feasible ~speed:1. jobs);
  Alcotest.(check bool) "infeasible at 0.9" false (Sched_energy.Edf.feasible ~speed:0.9 jobs)

let suite =
  suite
  @ [
      Alcotest.test_case "custom powers: non-convex step" `Quick test_custom_powers_nonconvex;
      Alcotest.test_case "custom powers: static" `Quick test_custom_powers_static;
      test_edf_cross_checks_yds ();
      Alcotest.test_case "edf simple" `Quick test_edf_simple;
    ]
