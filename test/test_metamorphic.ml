(* Metamorphic properties for every registered policy: job-permutation
   invariance, machine-relabeling equivalence, power-of-two time-scale
   covariance and release-shift invariance — evaluated both inline and
   fanned out through the domain pool at widths 1 and 4 (the fanned-out
   verdict matrix must be identical at any width). *)

open Sched_model
module Fuzz = Sched_fuzz.Fuzz
module P = Sched_experiments.Policy_registry
module Pool = Sched_stats.Pool
module Transform = Sched_workload.Transform

(* Dyadic instances: every quantity is a multiple of 1/4 and machine speeds
   are powers of two, so the scale/shift covariances hold exactly. *)
let instances =
  lazy
    [
      Test_util.random_instance ~seed:21 ~n:24 ~m:3 ();
      Test_util.random_instance ~weighted:true ~seed:22 ~n:20 ~m:2 ();
      Test_util.random_instance ~restricted:true ~seed:23 ~n:24 ~m:3 ();
    ]

let props = [ "oracle"; "permute"; "relabel"; "scale" ]

let check_policy (entry : P.entry) () =
  List.iter
    (fun inst ->
      List.iter
        (fun prop ->
          match Fuzz.property_fails entry prop inst with
          | None -> ()
          | Some d ->
              Alcotest.failf "%s violates %s on %s: %s" entry.P.name prop
                inst.Instance.name d)
        props)
    (Lazy.force instances)

(* Shifting every release by an integer leaves flow-times, rejections and
   energy untouched (completions shift along with the releases). *)
let check_shift (entry : P.entry) () =
  List.iter
    (fun inst ->
      let base = entry.P.run inst in
      let shifted = entry.P.run (Transform.shift_releases 4. inst) in
      let f s = (Metrics.flow s).Metrics.total_with_rejected in
      Alcotest.(check (float 1e-6))
        (entry.P.name ^ " flow shift-invariant on " ^ inst.Instance.name)
        (f base) (f shifted);
      Alcotest.(check int)
        (entry.P.name ^ " rejections shift-invariant")
        (Metrics.rejection base).Metrics.count
        (Metrics.rejection shifted).Metrics.count;
      Alcotest.(check (float 1e-6))
        (entry.P.name ^ " energy shift-invariant")
        (Metrics.energy base) (Metrics.energy shifted))
    (Lazy.force instances)

(* The full (policy, property, instance) verdict matrix, fanned out through
   the work-sharing pool.  parallel_map assembles results in input order, so
   the matrix must be identical at any width — and all-clean. *)
let matrix domains =
  let items =
    List.concat_map
      (fun (e : P.entry) ->
        List.concat_map
          (fun prop ->
            List.mapi (fun i inst -> (e, prop, i, inst)) (Lazy.force instances))
          props)
      P.all
  in
  Pool.with_pool ~domains (fun pool ->
      Pool.parallel_map_list pool
        (fun (e, prop, i, inst) ->
          let verdict =
            match Fuzz.property_fails e prop inst with None -> "ok" | Some d -> d
          in
          (Printf.sprintf "%s|%s|%d" e.P.name prop i, verdict))
        items)

let test_matrix_widths () =
  let w1 = matrix 1 and w4 = matrix 4 in
  Alcotest.(check (list (pair string string)))
    "verdict matrix identical at widths 1 and 4" w1 w4;
  List.iter
    (fun (label, verdict) ->
      if verdict <> "ok" then Alcotest.failf "%s failed: %s" label verdict)
    w1

let suite =
  List.concat_map
    (fun (e : P.entry) ->
      [
        Alcotest.test_case (e.P.name ^ " metamorphic") `Quick (check_policy e);
        Alcotest.test_case (e.P.name ^ " release shift") `Quick (check_shift e);
      ])
    P.all
  @ [ Alcotest.test_case "pool-width verdict matrix" `Quick test_matrix_widths ]
