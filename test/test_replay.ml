(* Determinism and replay: the same seed must reproduce the same instance
   and the same run, byte for byte, and running through
   [Sched_stats.Parallel] must be observationally identical to running
   sequentially. *)

open Sched_model
module PR = Sched_experiments.Policy_registry

let dump e inst = Serialize.schedule_to_string (e.PR.run inst)

let test_same_seed_same_instance () =
  List.iter
    (fun seed ->
      let a = Test_util.random_instance ~weighted:true ~seed ~n:30 ~m:3 () in
      let b = Test_util.random_instance ~weighted:true ~seed ~n:30 ~m:3 () in
      Alcotest.(check string)
        (Printf.sprintf "instance seed %d" seed)
        (Serialize.instance_to_string a) (Serialize.instance_to_string b);
      let g = Sched_workload.Suite.flow_uniform ~n:25 ~m:3 in
      Alcotest.(check string)
        (Printf.sprintf "generated instance seed %d" seed)
        (Serialize.instance_to_string (Sched_workload.Gen.instance g ~seed))
        (Serialize.instance_to_string (Sched_workload.Gen.instance g ~seed)))
    [ 1; 7; 42 ]

let test_rerun_byte_identical () =
  let insts =
    [
      Test_util.random_instance ~seed:5 ~n:25 ~m:3 ();
      Test_util.random_instance ~weighted:true ~restricted:true ~seed:6 ~n:25 ~m:3 ();
    ]
  in
  List.iter
    (fun (e : PR.entry) ->
      List.iter
        (fun inst ->
          Alcotest.(check string)
            (Printf.sprintf "%s replay on %s" e.name inst.Instance.name)
            (dump e inst) (dump e inst))
        insts)
    PR.all

let test_parallel_equals_sequential_runs () =
  let insts =
    Array.init 8 (fun k ->
        Test_util.random_instance ~weighted:(k mod 2 = 0) ~seed:(500 + k) ~n:30 ~m:3 ())
  in
  let e = Option.get (PR.find "flow-reject") in
  let sequential = Array.map (dump e) insts in
  let parallel = Sched_stats.Parallel.map_array ~domains:4 (dump e) insts in
  Array.iteri
    (fun k s ->
      Alcotest.(check string) (Printf.sprintf "instance %d" k) s parallel.(k))
    sequential

let suite =
  [
    Alcotest.test_case "same seed, same instance" `Quick test_same_seed_same_instance;
    Alcotest.test_case "rerun byte-identical (all policies)" `Quick test_rerun_byte_identical;
    Alcotest.test_case "parallel == sequential schedules" `Quick
      test_parallel_equals_sequential_runs;
  ]