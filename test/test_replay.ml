(* Determinism and replay: the same seed must reproduce the same instance
   and the same run, byte for byte, and running through
   [Sched_stats.Parallel] must be observationally identical to running
   sequentially. *)

open Sched_model
module PR = Sched_experiments.Policy_registry

let dump e inst = Serialize.schedule_to_string (e.PR.run inst)

let test_same_seed_same_instance () =
  List.iter
    (fun seed ->
      let a = Test_util.random_instance ~weighted:true ~seed ~n:30 ~m:3 () in
      let b = Test_util.random_instance ~weighted:true ~seed ~n:30 ~m:3 () in
      Alcotest.(check string)
        (Printf.sprintf "instance seed %d" seed)
        (Serialize.instance_to_string a) (Serialize.instance_to_string b);
      let g = Sched_workload.Suite.flow_uniform ~n:25 ~m:3 in
      Alcotest.(check string)
        (Printf.sprintf "generated instance seed %d" seed)
        (Serialize.instance_to_string (Sched_workload.Gen.instance g ~seed))
        (Serialize.instance_to_string (Sched_workload.Gen.instance g ~seed)))
    [ 1; 7; 42 ]

let test_rerun_byte_identical () =
  let insts =
    [
      Test_util.random_instance ~seed:5 ~n:25 ~m:3 ();
      Test_util.random_instance ~weighted:true ~restricted:true ~seed:6 ~n:25 ~m:3 ();
    ]
  in
  List.iter
    (fun (e : PR.entry) ->
      List.iter
        (fun inst ->
          Alcotest.(check string)
            (Printf.sprintf "%s replay on %s" e.name inst.Instance.name)
            (dump e inst) (dump e inst))
        insts)
    PR.all

(* Fisher–Yates with the repo's own deterministic RNG. *)
let permute ~seed xs =
  let a = Array.of_list xs in
  let rng = Sched_stats.Rng.create seed in
  for i = Array.length a - 1 downto 1 do
    let j = Sched_stats.Rng.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

let test_instance_order_independent () =
  (* Instance.create canonicalizes job order with a total comparator
     (release, then id), so permuting the input job list — including jobs
     with duplicate release times, where an unstable or partial sort
     would betray input order — must yield a byte-identical instance and
     byte-identical schedules. *)
  let jobs =
    List.mapi
      (fun id (release, size) ->
        Job.create ~id ~release ~sizes:[| size; 2. *. size |] ())
      [ (0., 2.); (0., 1.); (1., 4.); (1., 0.5); (1., 3.); (2., 1.5); (0., 0.25) ]
  in
  let machines = Machine.fleet 2 in
  let canonical = Instance.create ~name:"perm" ~machines ~jobs () in
  let reference = Serialize.instance_to_string canonical in
  let e = Option.get (PR.find "flow-reject") in
  let schedule_ref = dump e canonical in
  List.iter
    (fun seed ->
      let shuffled = Instance.create ~name:"perm" ~machines ~jobs:(permute ~seed jobs) () in
      Alcotest.(check string)
        (Printf.sprintf "instance, permutation seed %d" seed)
        reference
        (Serialize.instance_to_string shuffled);
      Alcotest.(check string)
        (Printf.sprintf "schedule, permutation seed %d" seed)
        schedule_ref (dump e shuffled))
    [ 11; 23; 97 ]

let test_summary_order_independent () =
  (* Summary.of_array sorts internally with a total order on floats, so
     sample order cannot leak into any reported statistic. *)
  let samples = [ 3.5; 1.25; 3.5; 0.5; 2.; 2.; 7.75; 1.25; 3.5 ] in
  let show s =
    Format.asprintf "%a" Sched_stats.Summary.pp s
  in
  let reference = show (Sched_stats.Summary.of_list samples) in
  List.iter
    (fun seed ->
      Alcotest.(check string)
        (Printf.sprintf "summary, permutation seed %d" seed)
        reference
        (show (Sched_stats.Summary.of_list (permute ~seed samples))))
    [ 3; 19; 71 ]

let test_parallel_equals_sequential_runs () =
  let insts =
    Array.init 8 (fun k ->
        Test_util.random_instance ~weighted:(k mod 2 = 0) ~seed:(500 + k) ~n:30 ~m:3 ())
  in
  let e = Option.get (PR.find "flow-reject") in
  let sequential = Array.map (dump e) insts in
  let parallel = Sched_stats.Parallel.map_array ~domains:4 (dump e) insts in
  Array.iteri
    (fun k s ->
      Alcotest.(check string) (Printf.sprintf "instance %d" k) s parallel.(k))
    sequential

let suite =
  [
    Alcotest.test_case "same seed, same instance" `Quick test_same_seed_same_instance;
    Alcotest.test_case "rerun byte-identical (all policies)" `Quick test_rerun_byte_identical;
    Alcotest.test_case "instance independent of job input order" `Quick
      test_instance_order_independent;
    Alcotest.test_case "summary independent of sample order" `Quick
      test_summary_order_independent;
    Alcotest.test_case "parallel == sequential schedules" `Quick
      test_parallel_equals_sequential_runs;
  ]