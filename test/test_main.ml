let () =
  Alcotest.run "rejection-scheduling"
    [
      ("rng", Test_rng.suite);
      ("dist", Test_dist.suite);
      ("summary+table", Test_summary_table.suite);
      ("model", Test_model.suite);
      ("schedule", Test_schedule.suite);
      ("metrics", Test_metrics.suite);
      ("pqueue", Test_pqueue.suite);
      ("driver", Test_driver.suite);
      ("pool", Test_pool.suite);
      ("parallel", Test_parallel.suite);
      ("flow-reject", Test_flow_reject.suite);
      ("flow-energy", Test_flow_energy.suite);
      ("energy-config", Test_energy_config.suite);
      ("bounds", Test_bounds.suite);
      ("simplex", Test_simplex.suite);
      ("lp+dual", Test_lp_dual.suite);
      ("baselines", Test_baselines.suite);
      ("energy-lib", Test_energy_lib.suite);
      ("workload", Test_workload.suite);
      ("adversaries", Test_adversaries.suite);
      ("oa", Test_oa.suite);
      ("weighted", Test_weighted.suite);
      ("api+edge", Test_api_edge.suite);
      ("restart", Test_restart.suite);
      ("transform", Test_transform.suite);
      ("pp", Test_pp.suite);
      ("extensions", Test_extensions.suite);
      ("experiments", Test_experiments.suite);
      ("policy-registry", Test_policy_registry.suite);
      ("differential", Test_differential.suite);
      ("replay", Test_replay.suite);
      ("lint", Test_lint.suite);
      ("obs", Test_obs.suite);
      ("cli", Test_cli.suite);
    ]
