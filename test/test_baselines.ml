open Sched_model
open Sched_sim

let test_fifo_valid () =
  let gen = Sched_workload.Suite.flow_uniform ~n:60 ~m:3 in
  let inst = Sched_workload.Gen.instance gen ~seed:2 in
  let s = Driver.run_schedule Sched_baselines.Greedy_dispatch.fifo inst in
  Schedule.assert_valid s;
  Alcotest.(check int) "no rejections" 0 (Metrics.rejection s).Metrics.count

let test_spt_beats_fifo_on_mixed () =
  (* SPT is typically better for total flow with mixed sizes. *)
  let gen = Sched_workload.Suite.flow_bimodal ~n:120 ~m:2 in
  let inst = Sched_workload.Gen.instance gen ~seed:5 in
  let fifo = Driver.run_schedule Sched_baselines.Greedy_dispatch.fifo inst in
  let spt = Driver.run_schedule Sched_baselines.Greedy_dispatch.spt inst in
  Alcotest.(check bool) "spt <= fifo" true
    (Test_util.total_flow spt <= Test_util.total_flow fifo +. 1e-6)

let test_fifo_order () =
  let inst = Test_util.instance [ (0., [| 5. |]); (0.1, [| 1. |]) ] in
  let s = Driver.run_schedule Sched_baselines.Greedy_dispatch.fifo inst in
  match (Schedule.outcome s 0, Schedule.outcome s 1) with
  | Outcome.Completed a, Outcome.Completed b ->
      Alcotest.(check bool) "fifo keeps arrival order" true (a.Outcome.start < b.Outcome.start)
  | _ -> Alcotest.fail "both complete"

let test_immediate_budget_property () =
  QCheck.Test.make ~name:"immediate policies respect eps budget" ~count:30
    QCheck.(triple (int_bound 1000) (float_range 0.1 0.5) bool)
    (fun (seed, eps, use_load) ->
      let h =
        if use_load then Sched_baselines.Immediate_reject.Load_threshold 2.
        else Sched_baselines.Immediate_reject.Largest_over 1.5
      in
      let gen = Sched_workload.Suite.flow_pareto ~n:80 ~m:2 in
      let inst = Sched_workload.Gen.instance gen ~seed in
      let s = Driver.run_schedule (Sched_baselines.Immediate_reject.policy ~eps h) inst in
      (match Schedule.validate ~check_deadlines:false s with Ok () -> true | Error _ -> false)
      && float_of_int (Metrics.rejection s).Metrics.count <= (eps *. 80.) +. 1e-9)
  |> QCheck_alcotest.to_alcotest

let test_immediate_never_rejects_nothing () =
  let gen = Sched_workload.Suite.flow_uniform ~n:50 ~m:2 in
  let inst = Sched_workload.Gen.instance gen ~seed:4 in
  let s =
    Driver.run_schedule
      (Sched_baselines.Immediate_reject.policy ~eps:0.5 Sched_baselines.Immediate_reject.Never)
      inst
  in
  Alcotest.(check int) "never rejects" 0 (Metrics.rejection s).Metrics.count

let test_immediate_rejections_at_arrival_only () =
  let gen = Sched_workload.Suite.flow_bimodal ~n:80 ~m:2 in
  let inst = Sched_workload.Gen.instance gen ~seed:6 in
  let s =
    Driver.run_schedule
      (Sched_baselines.Immediate_reject.policy ~eps:0.3
         (Sched_baselines.Immediate_reject.Largest_over 1.5))
      inst
  in
  Array.iter
    (fun (j : Job.t) ->
      match Schedule.outcome s j.Job.id with
      | Outcome.Rejected r ->
          Alcotest.(check (float 1e-9)) "rejected at its own release" j.Job.release r.Outcome.time;
          Alcotest.(check bool) "never mid-run" false r.Outcome.was_running
      | Outcome.Completed _ -> ())
    (Instance.jobs_by_release inst)

let test_speed_augmented_faster_machines () =
  let gen = Sched_workload.Suite.flow_uniform ~n:60 ~m:2 in
  let inst = Sched_workload.Gen.instance gen ~seed:8 in
  let fast = Sched_baselines.Speed_augmented.speedup_instance 1.5 inst in
  for i = 0 to Instance.m inst - 1 do
    Alcotest.(check (float 1e-12)) "speed scaled" 1.5 (Instance.machine fast i).Machine.speed
  done;
  let s = Sched_baselines.Speed_augmented.run ~eps_s:0.5 ~eps_r:0.2 inst in
  Schedule.assert_valid ~check_deadlines:false s

let test_srpt_known_value () =
  (* Jobs (r=0, p=3), (r=1, p=1): SRPT preempts -> flows: job1 completes at
     2 (flow 1), job0 at 4 (flow 4): total 5. *)
  let inst = Test_util.instance [ (0., [| 3. |]); (1., [| 1. |]) ] in
  Alcotest.(check (float 1e-9)) "srpt" 5. (Sched_baselines.Srpt_single.total_flow inst)

let test_srpt_below_opt_property () =
  QCheck.Test.make ~name:"SRPT (preemptive) <= brute OPT (non-preemptive)" ~count:25
    QCheck.(int_bound 1000)
    (fun seed ->
      let inst = Sched_workload.Suite.tiny ~seed ~n:7 ~m:1 in
      let srpt = Sched_baselines.Srpt_single.total_flow inst in
      let opt = Option.get (Sched_baselines.Brute_force.optimal_flow inst) in
      srpt <= opt +. 1e-6)
  |> QCheck_alcotest.to_alcotest

let test_srpt_requires_single_machine () =
  let inst = Test_util.instance ~machines:2 [ (0., [| 1.; 1. |]) ] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Sched_baselines.Srpt_single.total_flow inst);
       false
     with Invalid_argument _ -> true)

let test_brute_force_known () =
  (* Two jobs at 0 with p=1 and p=3 on one machine: SPT order optimal,
     flows 1 and 4 -> 5. *)
  let inst = Test_util.instance [ (0., [| 3. |]); (0., [| 1. |]) ] in
  Alcotest.(check (option (float 1e-9))) "opt" (Some 5.)
    (Sched_baselines.Brute_force.optimal_flow inst)

let test_brute_force_uses_both_machines () =
  (* Two equal jobs at 0, two machines: run in parallel, flows 2 + 2. *)
  let inst = Test_util.instance ~machines:2 [ (0., [| 2.; 2. |]); (0., [| 2.; 2. |]) ] in
  Alcotest.(check (option (float 1e-9))) "parallel opt" (Some 4.)
    (Sched_baselines.Brute_force.optimal_flow inst)

let test_brute_force_respects_eligibility () =
  let inst =
    Test_util.instance ~machines:2 [ (0., [| 2.; Float.infinity |]); (0., [| 2.; Float.infinity |]) ]
  in
  (* Both forced on machine 0: flows 2 + 4 = 6. *)
  Alcotest.(check (option (float 1e-9))) "restricted opt" (Some 6.)
    (Sched_baselines.Brute_force.optimal_flow inst)

let test_brute_force_size_cap () =
  let gen = Sched_workload.Suite.flow_uniform ~n:20 ~m:2 in
  let inst = Sched_workload.Gen.instance gen ~seed:1 in
  Alcotest.(check bool) "over cap -> None" true
    (Sched_baselines.Brute_force.optimal_flow inst = None)

let test_brute_below_any_policy_property () =
  QCheck.Test.make ~name:"brute OPT <= any online policy's cost" ~count:25
    QCheck.(pair (int_bound 1000) (int_range 1 2))
    (fun (seed, m) ->
      let inst = Sched_workload.Suite.tiny ~seed ~n:6 ~m in
      let opt = Option.get (Sched_baselines.Brute_force.optimal_flow inst) in
      let fifo = Driver.run_schedule Sched_baselines.Greedy_dispatch.fifo inst in
      let spt = Driver.run_schedule Sched_baselines.Greedy_dispatch.spt inst in
      opt <= Test_util.total_flow fifo +. 1e-6 && opt <= Test_util.total_flow spt +. 1e-6)
  |> QCheck_alcotest.to_alcotest

let test_lower_bounds_ordering () =
  let inst = Sched_workload.Suite.tiny ~seed:5 ~n:6 ~m:1 in
  let volume = (Sched_baselines.Lower_bounds.volume inst).Sched_baselines.Lower_bounds.value in
  let best = (Sched_baselines.Lower_bounds.best_flow inst).Sched_baselines.Lower_bounds.value in
  let opt = Option.get (Sched_baselines.Brute_force.optimal_flow inst) in
  Alcotest.(check bool) "volume <= best" true (volume <= best +. 1e-9);
  Alcotest.(check bool) "best <= opt (best includes opt)" true (Float.abs (best -. opt) <= 1e-6)

let suite =
  [
    Alcotest.test_case "fifo valid" `Quick test_fifo_valid;
    Alcotest.test_case "spt <= fifo on bimodal" `Quick test_spt_beats_fifo_on_mixed;
    Alcotest.test_case "fifo order" `Quick test_fifo_order;
    test_immediate_budget_property ();
    Alcotest.test_case "immediate-never rejects nothing" `Quick test_immediate_never_rejects_nothing;
    Alcotest.test_case "immediate rejects at arrival only" `Quick
      test_immediate_rejections_at_arrival_only;
    Alcotest.test_case "speed augmentation" `Quick test_speed_augmented_faster_machines;
    Alcotest.test_case "srpt known value" `Quick test_srpt_known_value;
    test_srpt_below_opt_property ();
    Alcotest.test_case "srpt single machine only" `Quick test_srpt_requires_single_machine;
    Alcotest.test_case "brute force known" `Quick test_brute_force_known;
    Alcotest.test_case "brute force parallel" `Quick test_brute_force_uses_both_machines;
    Alcotest.test_case "brute force eligibility" `Quick test_brute_force_respects_eligibility;
    Alcotest.test_case "brute force cap" `Quick test_brute_force_size_cap;
    test_brute_below_any_policy_property ();
    Alcotest.test_case "lower bounds ordering" `Quick test_lower_bounds_ordering;
  ]

let test_local_search_improves () =
  let gen = Sched_workload.Suite.flow_bimodal ~n:60 ~m:2 in
  (* Seed 1 is a congested instance where the greedy start is far from
     locally optimal (4379 -> 1341 in 42 moves). *)
  let inst = Sched_workload.Gen.instance gen ~seed:1 in
  let r = Sched_baselines.Local_search.improve inst in
  Alcotest.(check bool) "no worse than greedy" true
    (r.Sched_baselines.Local_search.cost <= r.Sched_baselines.Local_search.initial_cost +. 1e-6);
  Alcotest.(check bool) "strictly improves here" true
    (r.Sched_baselines.Local_search.moves > 0
    && r.Sched_baselines.Local_search.cost < 0.5 *. r.Sched_baselines.Local_search.initial_cost)

let test_local_search_above_opt_property () =
  QCheck.Test.make ~name:"local search stays above brute-force OPT" ~count:20
    QCheck.(pair (int_bound 1000) (int_range 1 2))
    (fun (seed, m) ->
      let inst = Sched_workload.Suite.tiny ~seed ~n:7 ~m in
      let r = Sched_baselines.Local_search.improve inst in
      let opt = Option.get (Sched_baselines.Brute_force.optimal_flow inst) in
      r.Sched_baselines.Local_search.cost >= opt -. 1e-6)
  |> QCheck_alcotest.to_alcotest

let test_local_search_often_finds_opt () =
  (* On tiny instances the relocate neighborhood usually reaches the
     optimum; require it on at least 3 of 5 seeds. *)
  let hits = ref 0 in
  List.iter
    (fun seed ->
      let inst = Sched_workload.Suite.tiny ~seed ~n:6 ~m:2 in
      let r = Sched_baselines.Local_search.improve inst in
      let opt = Option.get (Sched_baselines.Brute_force.optimal_flow inst) in
      if r.Sched_baselines.Local_search.cost <= opt +. 1e-6 then incr hits)
    [ 1; 2; 3; 4; 5 ];
  Alcotest.(check bool) (Printf.sprintf "reached OPT on %d/5" !hits) true (!hits >= 3)

let test_fractional_flow () =
  (* Single job p=4 run immediately: waiting 0, execution contributes
     d/2 = 2. *)
  let inst = Test_util.instance [ (0., [| 4. |]) ] in
  let s = Sched_sim.Driver.run_schedule Sched_baselines.Greedy_dispatch.fifo inst in
  Alcotest.(check (float 1e-9)) "d/2" 2. (Metrics.fractional_flow s);
  (* Two jobs at 0, FIFO: job 1 waits 2 then runs 3: 2 + 1.5; job 0: 1. *)
  let inst2 = Test_util.instance [ (0., [| 2. |]); (0., [| 3. |]) ] in
  let s2 = Sched_sim.Driver.run_schedule Sched_baselines.Greedy_dispatch.fifo inst2 in
  Alcotest.(check (float 1e-9)) "waiting + halves" 4.5 (Metrics.fractional_flow s2)

let test_fractional_flow_lp_relation () =
  QCheck.Test.make ~name:"LP value <= fractional flow + volume of any schedule" ~count:15
    QCheck.(int_bound 1000)
    (fun seed ->
      let inst = Sched_workload.Suite.tiny ~seed ~n:6 ~m:2 in
      let s = Sched_sim.Driver.run_schedule Sched_baselines.Greedy_dispatch.spt inst in
      let frac = Metrics.fractional_flow s in
      let volume =
        List.fold_left
          (fun acc (g : Schedule.segment) ->
            acc +. ((g.Schedule.stop -. g.Schedule.start) *. g.Schedule.speed))
          0. s.Schedule.segments
      in
      match Sched_lp.Flow_lp.solve inst with
      | Some sol -> sol.Sched_lp.Flow_lp.lp_value <= frac +. volume +. 1e-6
      | None -> true)
  |> QCheck_alcotest.to_alcotest

let suite =
  suite
  @ [
      Alcotest.test_case "local search improves" `Quick test_local_search_improves;
      test_local_search_above_opt_property ();
      Alcotest.test_case "local search finds OPT on tiny" `Quick test_local_search_often_finds_opt;
      Alcotest.test_case "fractional flow" `Quick test_fractional_flow;
      test_fractional_flow_lp_relation ();
    ]
