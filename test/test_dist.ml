open Sched_stats

let rng () = Rng.create 123

let sample_many d k =
  let r = rng () in
  List.init k (fun _ -> Dist.sample d r)

let check_all_positive name d =
  List.iter (fun x -> Alcotest.(check bool) (name ^ " positive") true (x > 0.)) (sample_many d 500)

let test_constant () =
  let d = Dist.constant 4.2 in
  List.iter (fun x -> Alcotest.(check (float 0.)) "constant" 4.2 x) (sample_many d 20);
  Alcotest.(check (option (float 1e-9))) "mean" (Some 4.2) (Dist.mean d)

let test_uniform_bounds () =
  let d = Dist.uniform ~lo:2. ~hi:5. in
  List.iter
    (fun x -> Alcotest.(check bool) "in bounds" true (x >= 2. && x <= 5.))
    (sample_many d 500)

let test_bounded_pareto_bounds () =
  let d = Dist.bounded_pareto ~shape:1.5 ~lo:1. ~hi:100. in
  List.iter
    (fun x -> Alcotest.(check bool) "in [1,100]" true (x >= 1. && x <= 100.))
    (sample_many d 1000)

let test_bounded_pareto_mean () =
  let d = Dist.bounded_pareto ~shape:1.5 ~lo:1. ~hi:100. in
  let samples = sample_many d 100000 in
  let mean = List.fold_left ( +. ) 0. samples /. 100000. in
  match Dist.mean d with
  | None -> Alcotest.fail "bounded pareto mean should be known"
  | Some mu ->
      Alcotest.(check bool)
        (Printf.sprintf "empirical %.3f ~ theoretical %.3f" mean mu)
        true
        (Float.abs (mean -. mu) /. mu < 0.1)

let test_bimodal_values () =
  let d = Dist.bimodal ~lo:1. ~hi:50. ~p_hi:0.2 in
  List.iter
    (fun x -> Alcotest.(check bool) "lo or hi" true (x = 1. || x = 50.))
    (sample_many d 300)

let test_bimodal_proportion () =
  let d = Dist.bimodal ~lo:1. ~hi:50. ~p_hi:0.2 in
  let k = 20000 in
  let highs = List.length (List.filter (fun x -> x = 50.) (sample_many d k)) in
  let p = float_of_int highs /. float_of_int k in
  Alcotest.(check bool) "p_hi ~ 0.2" true (Float.abs (p -. 0.2) < 0.02)

let test_exponential_positive () = check_all_positive "exp" (Dist.exponential ~mean:3.)
let test_lognormal_positive () = check_all_positive "lognormal" (Dist.lognormal ~mu:0.5 ~sigma:1.)

let test_quantize_grid () =
  let d = Dist.quantize ~grid:0.5 (Dist.uniform ~lo:0.1 ~hi:3.) in
  List.iter
    (fun x ->
      let q = x /. 0.5 in
      Alcotest.(check bool) "multiple of grid" true (Float.abs (q -. Float.round q) < 1e-9);
      Alcotest.(check bool) "positive" true (x > 0.))
    (sample_many d 300)

let test_scaled () =
  let d = Dist.scaled 3. (Dist.constant 2.) in
  List.iter (fun x -> Alcotest.(check (float 1e-12)) "scaled" 6. x) (sample_many d 10)

let test_choice_members () =
  let d = Dist.choice [ (1., Dist.constant 1.); (2., Dist.constant 7.) ] in
  let values = sample_many d 2000 in
  List.iter (fun x -> Alcotest.(check bool) "1 or 7" true (x = 1. || x = 7.)) values;
  let sevens = List.length (List.filter (fun x -> x = 7.) values) in
  Alcotest.(check bool) "weighting ~ 2/3" true
    (Float.abs ((float_of_int sevens /. 2000.) -. (2. /. 3.)) < 0.05)

let test_mixture_mean () =
  let d = Dist.choice [ (1., Dist.constant 2.); (1., Dist.constant 4.) ] in
  Alcotest.(check (option (float 1e-9))) "mixture mean" (Some 3.) (Dist.mean d)

let test_invalid_args () =
  Alcotest.check_raises "uniform lo<=0" (Invalid_argument "assertion failed") (fun () ->
      try ignore (Dist.uniform ~lo:0. ~hi:1.) with Assert_failure _ -> raise (Invalid_argument "assertion failed"))

let suite =
  [
    Alcotest.test_case "constant" `Quick test_constant;
    Alcotest.test_case "uniform bounds" `Quick test_uniform_bounds;
    Alcotest.test_case "bounded pareto bounds" `Quick test_bounded_pareto_bounds;
    Alcotest.test_case "bounded pareto mean" `Slow test_bounded_pareto_mean;
    Alcotest.test_case "bimodal values" `Quick test_bimodal_values;
    Alcotest.test_case "bimodal proportion" `Quick test_bimodal_proportion;
    Alcotest.test_case "exponential positive" `Quick test_exponential_positive;
    Alcotest.test_case "lognormal positive" `Quick test_lognormal_positive;
    Alcotest.test_case "quantize grid" `Quick test_quantize_grid;
    Alcotest.test_case "scaled" `Quick test_scaled;
    Alcotest.test_case "choice members" `Quick test_choice_members;
    Alcotest.test_case "mixture mean" `Quick test_mixture_mean;
    Alcotest.test_case "invalid args" `Quick test_invalid_args;
  ]
