open Sched_energy

let job release deadline volume = { Yds.release; deadline; volume }

let test_power_eval () =
  let p = Power.polynomial ~alpha:3. in
  Alcotest.(check (float 1e-9)) "2^3" 8. (Power.eval p 2.);
  Alcotest.(check (float 1e-9)) "0" 0. (Power.eval p 0.);
  Alcotest.(check (float 1e-9)) "energy" 16. (Power.energy p ~speed:2. ~duration:2.)

let test_power_affine () =
  let p = Power.affine_polynomial ~alpha:2. ~static:3. in
  Alcotest.(check (float 1e-9)) "P(0)=0" 0. (Power.eval p 0.);
  Alcotest.(check (float 1e-9)) "P(2)=7" 7. (Power.eval p 2.)

let test_power_piecewise () =
  let p = Power.piecewise [ (1., 1.); (2., 4.) ] in
  Alcotest.(check (float 1e-9)) "below 1" 1. (Power.eval p 0.5);
  Alcotest.(check (float 1e-9)) "at 2" 4. (Power.eval p 2.);
  Alcotest.(check (float 1e-9)) "clamped" 4. (Power.eval p 5.);
  Alcotest.(check (float 1e-9)) "zero" 0. (Power.eval p 0.)

let test_optimal_speed () =
  (* d/ds (w/s + s^(a-1)) = 0 -> s = (w/(a-1))^(1/a). *)
  let s = Power.optimal_speed_for_flow ~alpha:3. ~weight:2. in
  Alcotest.(check (float 1e-9)) "formula" 1. s;
  (* Verify it is a minimum by sampling. *)
  let cost s = (2. /. s) +. (s ** 2.) in
  Alcotest.(check bool) "minimum" true (cost s <= cost (s *. 1.1) && cost s <= cost (s *. 0.9))

let test_yds_single_job () =
  (* One job: constant speed p/(d-r) over its window. *)
  let e = Yds.optimal_energy ~alpha:3. [ job 0. 4. 2. ] in
  Alcotest.(check (float 1e-9)) "single job" ((0.5 ** 3.) *. 4.) e

let test_yds_two_disjoint () =
  let e = Yds.optimal_energy ~alpha:2. [ job 0. 2. 2.; job 2. 4. 2. ] in
  Alcotest.(check (float 1e-9)) "disjoint unit speed" 4. e

let test_yds_nested () =
  (* Outer [0,4] volume 2, inner [1,3] volume 4: critical interval [1,3]
     at speed 2 (energy 2*4=8 for alpha 2), outer spreads over remaining
     2 units at speed 1 -> +2. *)
  let e = Yds.optimal_energy ~alpha:2. [ job 0. 4. 2.; job 1. 3. 4. ] in
  Alcotest.(check (float 1e-9)) "nested" 10. e

let test_yds_below_avr_property () =
  QCheck.Test.make ~name:"YDS <= AVR (YDS optimality)" ~count:60
    QCheck.(list_of_size (Gen.int_range 1 8) (triple (float_range 0. 10.) (float_range 0.5 5.) (float_range 0.5 5.)))
    (fun raw ->
      let jobs = List.map (fun (r, span, v) -> job r (r +. span) v) raw in
      let yds = Yds.optimal_energy ~alpha:3. jobs in
      let avr = Avr.energy ~alpha:3. jobs in
      yds <= avr +. 1e-6)
  |> QCheck_alcotest.to_alcotest

let test_yds_above_perjob_property () =
  QCheck.Test.make ~name:"YDS >= sum of per-job bounds (superadditivity)" ~count:60
    QCheck.(list_of_size (Gen.int_range 1 8) (triple (float_range 0. 10.) (float_range 0.5 5.) (float_range 0.5 5.)))
    (fun raw ->
      let jobs = List.map (fun (r, span, v) -> job r (r +. span) v) raw in
      let alpha = 2.5 in
      let yds = Yds.optimal_energy ~alpha jobs in
      let perjob =
        List.fold_left
          (fun acc (j : Yds.job) ->
            acc +. ((j.Yds.volume ** alpha) /. ((j.Yds.deadline -. j.Yds.release) ** (alpha -. 1.))))
          0. jobs
      in
      yds >= perjob -. 1e-6)
  |> QCheck_alcotest.to_alcotest

let test_avr_single_job () =
  let e = Avr.energy ~alpha:2. [ job 0. 4. 2. ] in
  Alcotest.(check (float 1e-9)) "avr single" 1. e

let test_avr_overlap () =
  (* Two identical jobs [0,2] volume 2 -> density 1 each, speed 2 on [0,2]:
     energy 2^2 * 2 = 8 for alpha 2. *)
  let e = Avr.energy ~alpha:2. [ job 0. 2. 2.; job 0. 2. 2. ] in
  Alcotest.(check (float 1e-9)) "avr overlap" 8. e

let test_deadline_energy_lb () =
  let inst = Test_util.deadline_instance ~alpha:2. [ (0., 2., [| 2. |]); (2., 4., [| 2. |]) ] in
  (* Each job: p^2/span = 4/2 = 2. *)
  Alcotest.(check (float 1e-9)) "per-job lb" 4. (Energy_bounds.deadline_energy_lb inst)

let test_yds_lb_tighter () =
  let inst = Test_util.deadline_instance ~alpha:2. [ (0., 2., [| 2. |]); (0., 2., [| 2. |]) ] in
  let lb, src = Energy_bounds.best_deadline_energy inst in
  (* Superadditive: 2+2 = 4; YDS: speed 2 over [0,2] -> 8. *)
  Alcotest.(check string) "yds wins" "yds" src;
  Alcotest.(check (float 1e-9)) "value" 8. lb

let test_flow_energy_lb_formula () =
  let inst = Test_util.weighted_instance ~alpha:3. [ (0., 2., [| 4. |]) ] in
  (* s* = 1, cost = p (w/s + s^2) = 4 * 3 = 12. *)
  Alcotest.(check (float 1e-9)) "per-job flow+energy lb" 12.
    (Energy_bounds.flow_energy_lb inst)

let test_smooth_lhs_known () =
  let p = Power.polynomial ~alpha:2. in
  (* a = [1], b = [1]: (1+1)^2 - 1^2 = 3. *)
  Alcotest.(check (float 1e-9)) "lhs" 3. (Smooth.lhs p ~a:[| 1. |] ~b:[| 1. |])

let test_smooth_violation_detection () =
  let p = Power.polynomial ~alpha:2. in
  (* lambda = 0.1, mu = 0: clearly violated by a=b=[1]. *)
  Alcotest.(check bool) "violates" true
    (Smooth.violates p ~lambda:0.1 ~mu:0. ~a:[| 1. |] ~b:[| 1. |]);
  Alcotest.(check bool) "not violated with big lambda" false
    (Smooth.violates p ~lambda:10. ~mu:0. ~a:[| 1. |] ~b:[| 1. |])

let test_required_lambda_alpha2 () =
  (* For s^2 with mu = 1/2 the worst case over our generators should land
     near 3 (single spike against a ramp) and certainly within [2, 6]. *)
  let rng = Sched_stats.Rng.create 7 in
  let l = Smooth.required_lambda ~trials:500 (Power.polynomial ~alpha:2.) ~mu:0.5 rng in
  Alcotest.(check bool) (Printf.sprintf "lambda ~ 3 (got %.3f)" l) true (l >= 2. && l <= 6.)

let test_smooth_check () =
  let rng = Sched_stats.Rng.create 11 in
  Alcotest.(check bool) "holds for generous lambda" true
    (Smooth.check ~trials:300 (Power.polynomial ~alpha:2.) ~lambda:10. ~mu:0.5 rng)

let suite =
  [
    Alcotest.test_case "power eval" `Quick test_power_eval;
    Alcotest.test_case "power affine" `Quick test_power_affine;
    Alcotest.test_case "power piecewise" `Quick test_power_piecewise;
    Alcotest.test_case "optimal speed for flow" `Quick test_optimal_speed;
    Alcotest.test_case "yds single job" `Quick test_yds_single_job;
    Alcotest.test_case "yds disjoint" `Quick test_yds_two_disjoint;
    Alcotest.test_case "yds nested" `Quick test_yds_nested;
    test_yds_below_avr_property ();
    test_yds_above_perjob_property ();
    Alcotest.test_case "avr single" `Quick test_avr_single_job;
    Alcotest.test_case "avr overlap" `Quick test_avr_overlap;
    Alcotest.test_case "deadline energy lb" `Quick test_deadline_energy_lb;
    Alcotest.test_case "yds lb tighter" `Quick test_yds_lb_tighter;
    Alcotest.test_case "flow+energy lb formula" `Quick test_flow_energy_lb_formula;
    Alcotest.test_case "smooth lhs" `Quick test_smooth_lhs_known;
    Alcotest.test_case "smooth violation detection" `Quick test_smooth_violation_detection;
    Alcotest.test_case "required lambda alpha=2" `Quick test_required_lambda_alpha2;
    Alcotest.test_case "smooth check" `Quick test_smooth_check;
  ]
