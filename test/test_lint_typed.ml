(* Tests for rejlint's typed tier (lib/analysis/typed/).

   The fixtures live in test/lint_fixtures/typed/ as .ml sources; the
   dune rules there compile each one with [ocamlc -bin-annot], so the
   .cmt files the tests load go through exactly the loader path
   dune-built units take.  Each RJL1xx rule gets violating and clean
   fixtures; two meta-tests then turn the tier on the repository itself:
   the tree must be typed-clean, and the flat core's [@rejlint.hot]
   annotations must still be present (deleting one is a silent loss of
   the static zero-alloc proof, so the guard fails loudly). *)

module RL = Rejlint_lib

(* See Test_lint.fixture_base: cwd is _build/default/test under dune
   runtest, the repo root under a direct exec. *)
let fixture_base =
  let local = Filename.concat "lint_fixtures" "typed" in
  if Sys.file_exists local then local
  else
    Filename.concat
      (Filename.concat "_build" "default")
      (Filename.concat "test" local)

let fixture name = Filename.concat fixture_base name

let lib_scope =
  match RL.Scope.of_string "lib" with
  | Some s -> s
  | None -> failwith "lib scope unavailable"

let lint name = RL.Typed_lint.lint_cmts ~scope:lib_scope [ fixture name ]
let rules findings = List.map (fun f -> RL.Rule.to_string f.RL.Finding.rule) findings
let lines findings = List.map (fun f -> f.RL.Finding.line) findings

let check_rule rule findings =
  List.iter
    (fun f ->
      Alcotest.(check string)
        "rule" (RL.Rule.to_string rule)
        (RL.Rule.to_string f.RL.Finding.rule))
    findings

(* --- RJL100: alias-proof banned paths ---------------------------------- *)

let test_rjl100_bad () =
  let fs = lint "rjl100_bad.cmt" in
  Alcotest.(check int) "findings" 3 (List.length fs);
  check_rule RL.Rule.Typed_nondet fs;
  Alcotest.(check (list int)) "lines" [ 14; 15; 19 ] (lines fs);
  (* The messages carry both spellings: what the source wrote and what
     it resolves to. *)
  match fs with
  | f :: _ ->
      Alcotest.(check bool) "resolved path" true
        (Test_util.contains f.RL.Finding.message "Random.self_init");
      Alcotest.(check bool) "written path" true
        (Test_util.contains f.RL.Finding.message "R.self_init")
  | [] -> Alcotest.fail "expected findings"

let test_rjl100_ok () =
  (* Benign aliases are silent, and so is a direct banned call — that
     one belongs to the syntactic tier, not to RJL100. *)
  Alcotest.(check (list string)) "clean" [] (rules (lint "rjl100_ok.cmt"))

(* --- RJL101: type-aware polymorphic comparison ------------------------- *)

let test_rjl101_bad () =
  let fs = lint "rjl101_bad.cmt" in
  Alcotest.(check int) "findings" 3 (List.length fs);
  check_rule RL.Rule.Typed_poly_compare fs;
  Alcotest.(check (list int)) "lines" [ 7; 8; 9 ] (lines fs)

let test_rjl101_ok () =
  (* Constant constructors, safe atomics, primitive float ordering and
     Float.compare all pass. *)
  Alcotest.(check (list string)) "clean" [] (rules (lint "rjl101_ok.cmt"))

(* --- RJL102: policy purity --------------------------------------------- *)

let test_rjl102_bad () =
  let fs = lint "rjl102_bad.cmt" in
  Alcotest.(check int) "findings" 2 (List.length fs);
  check_rule RL.Rule.Policy_purity fs;
  (* One finding is the transitive mutable-toplevel reach, with its call
     chain spelled out; the other is the direct Random hazard. *)
  let msgs = String.concat "\n" (List.map (fun f -> f.RL.Finding.message) fs) in
  Alcotest.(check bool) "mutable reach" true (Test_util.contains msgs "mutable toplevel");
  Alcotest.(check bool) "chain" true (Test_util.contains msgs "Policy_registry.pack ->");
  Alcotest.(check bool) "random hazard" true (Test_util.contains msgs "Random")

let test_rjl102_ok () =
  (* A mutable toplevel the registry never reaches is not a violation. *)
  Alcotest.(check (list string)) "clean" [] (rules (lint "rjl102_ok.cmt"))

(* --- RJL103: static zero-alloc for hot functions ----------------------- *)

let test_rjl103_bad () =
  let fs = lint "rjl103_bad.cmt" in
  Alcotest.(check int) "findings" 4 (List.length fs);
  check_rule RL.Rule.Hot_alloc fs;
  let msgs = String.concat "\n" (List.map (fun f -> f.RL.Finding.message) fs) in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (Test_util.contains msgs needle))
    [
      "tuple allocation";
      "constructor allocation (Some)";
      "float arithmetic in return position";
      "closure allocation";
    ]

let test_rjl103_ok () =
  (* Stored-float reads, in-place arithmetic and [@rejlint.cold]
     branches are the allocation-free idiom the flat core uses. *)
  Alcotest.(check (list string)) "clean" [] (rules (lint "rjl103_ok.cmt"))

(* --- the repository under the typed tier ------------------------------- *)

let repo_root () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project")
       && Sys.is_directory (Filename.concat dir "lib")
    then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  up (Sys.getcwd ())

(* The tests run from _build/default/test, so the repo root found above
   is _build/default — which is itself the cmt root for the tree. *)
let cmt_root () =
  match repo_root () with
  | None -> Alcotest.fail "could not locate repository root from cwd"
  | Some root ->
      if Sys.is_directory (Filename.concat root "_build") then
        Filename.concat root (Filename.concat "_build" "default")
      else root

let test_repo_is_typed_clean () =
  match RL.Typed_lint.run ~cmt_dir:(cmt_root ()) () with
  | Error msg -> Alcotest.failf "typed tier found no cmts: %s" msg
  | Ok r ->
      Alcotest.(check bool) "units loaded" true (r.RL.Typed_lint.units > 50);
      let errors =
        List.filter (fun f -> f.RL.Finding.severity = RL.Rule.Error) r.RL.Typed_lint.findings
      in
      (* The one expected reach — the impl selector in run_view — is
         suppressed in the source; everything else must be clean. *)
      let unsuppressed =
        List.filter
          (fun (f : RL.Finding.t) ->
            (* The build tree mirrors the sources, comments included. *)
            let src = Filename.concat (cmt_root ()) f.file in
            not (Sys.file_exists src)
            ||
            let ic = open_in_bin src in
            let len = in_channel_length ic in
            let text = really_input_string ic len in
            close_in ic;
            RL.Suppress.filter (RL.Suppress.scan text) [ f ] <> [])
          errors
      in
      if unsuppressed <> [] then
        Alcotest.failf "repository is not typed-clean:\n%s"
          (String.concat "\n" (List.map RL.Finding.to_human unsuppressed))

let test_hot_annotations_guarded () =
  (* Removing [@rejlint.hot] from the flat core would silently drop the
     static proof; pin the annotated set. *)
  let root = cmt_root () in
  let cmt sub = Filename.concat root sub in
  let driver_hot =
    RL.Typed_lint.hot_functions_of_cmt
      (cmt "lib/sim/.sched_sim.objs/byte/sched_sim__Driver.cmt")
  in
  List.iter
    (fun name ->
      Alcotest.(check bool) ("driver hot: " ^ name) true (List.mem name driver_hot))
    [ "loop"; "try_start"; "reject_job"; "restart_job"; "cand_mask_boxed"; "cand_count_boxed";
      "popcount";
      (* The sharded two-phase tick: commit handlers shared with run_flat
         plus the merge-pop and per-shard proposal scan. *)
      "commit_arrival"; "commit_finish"; "next_source"; "propose_shard" ];
  let flat_hot =
    RL.Typed_lint.hot_functions_of_cmt
      (cmt "lib/sim/.sched_sim.objs/byte/sched_sim__Flat_state.cmt")
  in
  List.iter
    (fun name ->
      Alcotest.(check bool) ("flat_state hot: " ^ name) true (List.mem name flat_hot))
    [ "clock"; "set_clock"; "pend_add"; "pend_remove"; "next_event"; "lay_segment";
      "account_completion"; "account_rejection"; "outcome_completed"; "outcome_rejected";
      (* The flight recorder's dispatch-provenance scans: same-module reads
         so the release build boxes nothing. *)
      "cand_mask"; "cand_count"; "cand_mask_from"; "cand_count_from" ];
  Alcotest.(check bool) "flat_state hot coverage >= 25" true (List.length flat_hot >= 25);
  (* The recorder's whole write path must stay inside the static proof:
     un-annotating any of these drops RJL103 coverage exactly where an
     allocation would silently re-inflate the words-per-event floor. *)
  let ring_hot =
    RL.Typed_lint.hot_functions_of_cmt
      (cmt "lib/obs/.sched_obs.objs/byte/sched_obs__Ring.cmt")
  in
  List.iter
    (fun name -> Alcotest.(check bool) ("ring hot: " ^ name) true (List.mem name ring_hot))
    [ "append"; "set_int"; "set_float" ];
  let recorder_hot =
    RL.Typed_lint.hot_functions_of_cmt
      (cmt "lib/obs/.sched_obs.objs/byte/sched_obs__Recorder.cmt")
  in
  List.iter
    (fun name ->
      Alcotest.(check bool) ("recorder hot: " ^ name) true (List.mem name recorder_hot))
    [ "reserve"; "reserve_dispatch"; "reserve_start"; "reserve_complete"; "reserve_reject";
      "reserve_restart" ]

let suite =
  [
    Alcotest.test_case "rjl100: aliases and functors fire" `Quick test_rjl100_bad;
    Alcotest.test_case "rjl100: clean fixture" `Quick test_rjl100_ok;
    Alcotest.test_case "rjl101: typed poly-compare fires" `Quick test_rjl101_bad;
    Alcotest.test_case "rjl101: clean fixture" `Quick test_rjl101_ok;
    Alcotest.test_case "rjl102: impure registry fires" `Quick test_rjl102_bad;
    Alcotest.test_case "rjl102: pure registry clean" `Quick test_rjl102_ok;
    Alcotest.test_case "rjl103: boxed hot loop fires" `Quick test_rjl103_bad;
    Alcotest.test_case "rjl103: flat-core idiom clean" `Quick test_rjl103_ok;
    Alcotest.test_case "meta: repository is typed-clean" `Quick test_repo_is_typed_clean;
    Alcotest.test_case "meta: hot annotations guarded" `Quick test_hot_annotations_guarded;
  ]
