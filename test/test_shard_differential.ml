(* Shard differential layer: the sharded driver must be unobservable.
   For every corpus case x registry policy, [run_sharded ~shards:S] at
   S in {1, 2, 4} must produce the canonical schedule byte-identical to
   the flat core, bit-identical live metrics, and a byte-identical
   recorder NDJSON export — with the oracle auditing both sides.  This
   is the proof obligation behind DESIGN section 13's commit-order
   argument: phase 1 only proposes, phase 2 commits in the flat core's
   exact event order, so the shard count S cannot leak into any
   observable. *)

open Sched_model
open Sched_sim
module P = Sched_experiments.Policy_registry
module Corpus = Sched_fuzz.Corpus
module Pool = Sched_stats.Pool
module Rec = Sched_obs.Recorder
module TE = Trace_export

let shard_counts = [ 1; 2; 4 ]

let check_f what a b =
  if not (Float.equal a b) then
    Alcotest.failf "%s: flat %.17g <> sharded %.17g" what a b

let check_metrics ~what (lb : Driver.live_metrics) (lf : Driver.live_metrics) =
  let open Metrics in
  check_f (what ^ ": flow.total") lb.Driver.flow.total lf.Driver.flow.total;
  check_f (what ^ ": flow.weighted") lb.Driver.flow.weighted lf.Driver.flow.weighted;
  check_f
    (what ^ ": flow.total_with_rejected")
    lb.Driver.flow.total_with_rejected lf.Driver.flow.total_with_rejected;
  check_f
    (what ^ ": flow.weighted_with_rejected")
    lb.Driver.flow.weighted_with_rejected lf.Driver.flow.weighted_with_rejected;
  check_f (what ^ ": flow.max_flow") lb.Driver.flow.max_flow lf.Driver.flow.max_flow;
  check_f (what ^ ": flow.mean_flow") lb.Driver.flow.mean_flow lf.Driver.flow.mean_flow;
  check_f (what ^ ": flow.max_stretch") lb.Driver.flow.max_stretch lf.Driver.flow.max_stretch;
  check_f (what ^ ": energy") lb.Driver.energy lf.Driver.energy;
  check_f (what ^ ": makespan") lb.Driver.makespan lf.Driver.makespan;
  Alcotest.(check int)
    (what ^ ": rejection.count")
    lb.Driver.rejection.count lf.Driver.rejection.count;
  check_f (what ^ ": rejection.weight") lb.Driver.rejection.weight lf.Driver.rejection.weight;
  Alcotest.(check int)
    (what ^ ": rejection.mid_run")
    lb.Driver.rejection.mid_run lf.Driver.rejection.mid_run

(* One policy on one instance: the flat reference run (with recorder)
   against the sharded run at every S, schedules + metrics + recorder
   rings all identical.  [check] audits both sides except on
   deadline-bearing instances, for the same reason the flat differential
   suite skips those. *)
let check_case ?pool ~what (e : P.entry) instance =
  let check = not (Instance.has_deadlines instance) in
  let rc_ref = Rec.create ~capacity:4096 () in
  let s_ref, l_ref = e.P.run_impl ~recorder:rc_ref ~impl:Driver.Flat ~check instance in
  let c_ref = Serialize.schedule_to_canonical_string s_ref in
  let n_ref = TE.recorder_to_ndjson rc_ref in
  List.iter
    (fun shards ->
      let what = Printf.sprintf "%s/S=%d" what shards in
      let rc = Rec.create ~capacity:4096 () in
      let s, l = e.P.run_sharded ~recorder:rc ?pool ~check ~shards instance in
      let c = Serialize.schedule_to_canonical_string s in
      if not (String.equal c_ref c) then
        Alcotest.failf "%s: sharded schedule diverges from flat:\n--- flat ---\n%s\n--- sharded ---\n%s"
          what c_ref c;
      check_metrics ~what l_ref l;
      let n = TE.recorder_to_ndjson rc in
      if not (String.equal n_ref n) then
        Alcotest.failf "%s: recorder contents diverge:\n--- flat ---\n%s--- sharded ---\n%s"
          what n_ref n)
    shard_counts

(* Every corpus case under every registry policy — including the entries
   without sharded hooks, whose phase 2 runs [on_arrival] sequentially
   and must be equally unobservable. *)
let test_corpus_all_policies () =
  List.iter
    (fun (c : Corpus.case) ->
      List.iter
        (fun (e : P.entry) ->
          check_case ~what:(Printf.sprintf "%s/%s" c.Corpus.name e.P.name) e c.Corpus.instance)
        P.all)
    (Corpus.seeds ())

(* Wider instances (m up to 12) so shard boundaries actually cut the
   machine range at S = 2 and 4, exercising cross-shard argmin folding
   rather than the single-shard degenerate case. *)
let test_wide_random_instances () =
  let entries = Array.of_list P.all in
  for seed = 0 to 11 do
    let weighted = seed mod 2 = 1 and restricted = seed mod 3 = 0 in
    let instance =
      Test_util.random_instance ~weighted ~restricted ~seed:(100 + seed) ~n:(40 + (9 * seed))
        ~m:(5 + (seed mod 8)) ()
    in
    let e = entries.(seed mod Array.length entries) in
    check_case ~what:(Printf.sprintf "wide/s%d/%s" seed e.P.name) e instance
  done

(* A multi-domain pool must not be observable either: the parallel
   phase 1 is read-only and its proposals are folded in shard order. *)
let test_multi_domain_pool () =
  Pool.with_pool ~domains:3 (fun pool ->
      let instance = Test_util.random_instance ~seed:77 ~n:120 ~m:9 () in
      List.iter
        (fun name ->
          match P.find name with
          | None -> Alcotest.failf "registry is missing %s" name
          | Some e -> check_case ~pool ~what:("pooled/" ^ name) e instance)
        [ "flow-reject"; "flow-reject-greedy"; "flow-energy-reject"; "greedy-spt" ])

let test_invalid_shards () =
  let instance = Test_util.random_instance ~seed:3 ~n:10 ~m:2 () in
  let e = match P.find "flow-reject" with Some e -> e | None -> Alcotest.fail "registry" in
  List.iter
    (fun shards ->
      match e.P.run_sharded ~check:false ~shards instance with
      | _ -> Alcotest.failf "shards=%d accepted" shards
      | exception Invalid_argument _ -> ())
    [ 0; -1 ]

let suite =
  [
    ("corpus x policies x S in {1,2,4}, byte-identical", `Slow, test_corpus_all_policies);
    ("wide random instances, byte-identical", `Quick, test_wide_random_instances);
    ("multi-domain pool unobservable", `Quick, test_multi_domain_pool);
    ("shards < 1 rejected", `Quick, test_invalid_shards);
  ]
