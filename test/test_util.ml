(* Shared helpers for the test suite. *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* A tiny fixed instance: m machines, jobs given as (release, sizes). *)
let instance ?(name = "fixture") ?(machines = 1) jobs =
  let jobs =
    List.mapi
      (fun id (release, sizes) -> Sched_model.Job.create ~id ~release ~sizes ())
      jobs
  in
  Sched_model.Instance.create ~name
    ~machines:(Sched_model.Machine.fleet machines)
    ~jobs ()

let weighted_instance ?(name = "fixture") ?(machines = 1) ?(alpha = 3.) jobs =
  let jobs =
    List.mapi
      (fun id (release, weight, sizes) ->
        Sched_model.Job.create ~id ~release ~weight ~sizes ())
      jobs
  in
  Sched_model.Instance.create ~name
    ~machines:(Sched_model.Machine.fleet ~alpha machines)
    ~jobs ()

let deadline_instance ?(name = "fixture") ?(machines = 1) ?(alpha = 3.) jobs =
  let jobs =
    List.mapi
      (fun id (release, deadline, sizes) ->
        Sched_model.Job.create ~id ~release ~deadline ~sizes ())
      jobs
  in
  Sched_model.Instance.create ~name
    ~machines:(Sched_model.Machine.fleet ~alpha machines)
    ~jobs ()

let total_flow schedule =
  (Sched_model.Metrics.flow schedule).Sched_model.Metrics.total_with_rejected
