(* Shared helpers for the test suite. *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* A tiny fixed instance: m machines, jobs given as (release, sizes). *)
let instance ?(name = "fixture") ?(machines = 1) jobs =
  let jobs =
    List.mapi
      (fun id (release, sizes) -> Sched_model.Job.create ~id ~release ~sizes ())
      jobs
  in
  Sched_model.Instance.create ~name
    ~machines:(Sched_model.Machine.fleet machines)
    ~jobs ()

let weighted_instance ?(name = "fixture") ?(machines = 1) ?(alpha = 3.) jobs =
  let jobs =
    List.mapi
      (fun id (release, weight, sizes) ->
        Sched_model.Job.create ~id ~release ~weight ~sizes ())
      jobs
  in
  Sched_model.Instance.create ~name
    ~machines:(Sched_model.Machine.fleet ~alpha machines)
    ~jobs ()

let deadline_instance ?(name = "fixture") ?(machines = 1) ?(alpha = 3.) jobs =
  let jobs =
    List.mapi
      (fun id (release, deadline, sizes) ->
        Sched_model.Job.create ~id ~release ~deadline ~sizes ())
      jobs
  in
  Sched_model.Instance.create ~name
    ~machines:(Sched_model.Machine.fleet ~alpha machines)
    ~jobs ()

let total_flow schedule =
  (Sched_model.Metrics.flow schedule).Sched_model.Metrics.total_with_rejected

(* Random instances with dyadic numerics: releases, sizes and weights are
   multiples of 1/4 (and machine speeds powers of two), so every sum or
   difference the simulator computes is exact in float arithmetic.  Two
   implementations that make the same decisions therefore produce
   byte-identical schedules — which is what the differential and replay
   suites assert. *)
let random_instance ?(weighted = false) ?(restricted = false) ?(alpha = 3.) ~seed ~n ~m () =
  let rng = Sched_stats.Rng.create seed in
  let quarters lo hi =
    (* A multiple of 1/4 in [lo, hi], both ends included. *)
    let steps = ((hi - lo) * 4) + 1 in
    (float_of_int lo +. (float_of_int (Sched_stats.Rng.int rng steps) /. 4.) : float)
  in
  let machines =
    Array.init m (fun id ->
        let speed = [| 0.5; 1.; 1.; 2. |].(Sched_stats.Rng.int rng 4) in
        Sched_model.Machine.create ~id ~speed ~alpha ())
  in
  let jobs =
    List.init n (fun id ->
        let sizes =
          Array.init m (fun _ ->
              if restricted && Sched_stats.Rng.float rng < 0.3 then Float.infinity
              else 0.25 +. quarters 0 8)
        in
        (* Keep at least one machine eligible. *)
        if not (Array.exists Float.is_finite sizes) then
          sizes.(Sched_stats.Rng.int rng m) <- 0.25 +. quarters 0 8;
        let release = quarters 0 (max 1 (n / 2)) in
        let weight = if weighted then 0.25 +. quarters 0 4 else 1. in
        Sched_model.Job.create ~id ~release ~weight ~sizes ())
  in
  Sched_model.Instance.create
    ~name:(Printf.sprintf "diff-n%d-m%d-s%d" n m seed)
    ~machines ~jobs ()
