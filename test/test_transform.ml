open Sched_model
module T = Sched_workload.Transform

let flow_of policy inst = Test_util.total_flow (Sched_sim.Driver.run_schedule policy inst)

(* Scaling by a power of two is exact in binary floating point, so every
   comparison in the simulator is preserved bit-for-bit; arbitrary factors
   can flip borderline event orderings (e.g. a completion vs. a same-instant
   arrival) and legitimately change rejection decisions. *)
let pow2 = QCheck.map (fun k -> 2. ** float_of_int (k - 2)) (QCheck.int_range 0 5)

let test_scale_time_metamorphic () =
  (* Time rescaling is an exact symmetry of the model, the driver and every
     scale-invariant policy: flows must scale by exactly c. *)
  QCheck.Test.make ~name:"flow(c * I) = c * flow(I) (time-rescaling symmetry)" ~count:25
    QCheck.(pair (int_bound 1000) pow2)
    (fun (seed, c) ->
      let gen = Sched_workload.Suite.flow_pareto ~n:50 ~m:2 in
      let inst = Sched_workload.Gen.instance gen ~seed in
      let scaled = T.scale_time c inst in
      let base = flow_of Sched_baselines.Greedy_dispatch.spt inst in
      let after = flow_of Sched_baselines.Greedy_dispatch.spt scaled in
      Float.abs (after -. (c *. base)) <= 1e-6 *. Float.max 1. (c *. base))
  |> QCheck_alcotest.to_alcotest

let test_scale_time_metamorphic_thm1 () =
  (* The same symmetry must hold through both rejection rules. *)
  QCheck.Test.make ~name:"Theorem 1 flow scales exactly under time rescaling" ~count:25
    QCheck.(pair (int_bound 1000) pow2)
    (fun (seed, c) ->
      let gen = Sched_workload.Suite.flow_bimodal ~n:60 ~m:2 in
      let inst = Sched_workload.Gen.instance gen ~seed in
      let run i = fst (Rejection.Flow_reject.run (Rejection.Flow_reject.config ~eps:0.25 ()) i) in
      let base = Test_util.total_flow (run inst) in
      let after = Test_util.total_flow (run (T.scale_time c inst)) in
      Float.abs (after -. (c *. base)) <= 1e-6 *. Float.max 1. (c *. base))
  |> QCheck_alcotest.to_alcotest

let test_shift_metamorphic () =
  (* Shifting all releases by delta leaves every flow unchanged.  Dyadic
     data and integer shifts keep every addition exact, so the invariance
     is bit-for-bit (arbitrary floats could flip borderline ties). *)
  QCheck.Test.make ~name:"flow invariant under release shifts" ~count:20
    QCheck.(pair (int_bound 1000) (int_bound 100))
    (fun (seed, delta) ->
      let gen =
        Sched_workload.Gen.make
          ~arrivals:(Sched_workload.Gen.Batched { every = 4.; size = 3 })
          ~sizes:(Sched_stats.Dist.quantize ~grid:0.25 (Sched_stats.Dist.uniform ~lo:1. ~hi:8.))
          ~n:40 ~m:2 ()
      in
      let inst = Sched_workload.Gen.instance gen ~seed in
      let base = flow_of Sched_baselines.Greedy_dispatch.fifo inst in
      let after =
        flow_of Sched_baselines.Greedy_dispatch.fifo
          (T.shift_releases (float_of_int delta) inst)
      in
      Float.abs (after -. base) <= 1e-6 *. Float.max 1. base)
  |> QCheck_alcotest.to_alcotest

let test_scale_sizes_increases_flow () =
  let gen = Sched_workload.Suite.flow_uniform ~n:40 ~m:2 in
  let inst = Sched_workload.Gen.instance gen ~seed:3 in
  let base = flow_of Sched_baselines.Greedy_dispatch.spt inst in
  let heavier = flow_of Sched_baselines.Greedy_dispatch.spt (T.scale_sizes 2. inst) in
  Alcotest.(check bool) "doubling sizes at fixed arrivals increases flow" true (heavier > base)

let test_energy_scaling_law () =
  (* Under time rescaling by c, YDS energy scales by c^(1-alpha) * ... :
     volumes scale by c, spans by c, so speeds are invariant and energy
     (speed^alpha * duration) scales by c. *)
  let jobs =
    [ { Sched_energy.Yds.release = 0.; deadline = 4.; volume = 2. };
      { Sched_energy.Yds.release = 1.; deadline = 3.; volume = 2. } ]
  in
  let scaled =
    List.map
      (fun (j : Sched_energy.Yds.job) ->
        { Sched_energy.Yds.release = 3. *. j.Sched_energy.Yds.release;
          deadline = 3. *. j.Sched_energy.Yds.deadline;
          volume = 3. *. j.Sched_energy.Yds.volume })
      jobs
  in
  Alcotest.(check (float 1e-9)) "yds scales linearly"
    (3. *. Sched_energy.Yds.optimal_energy ~alpha:3. jobs)
    (Sched_energy.Yds.optimal_energy ~alpha:3. scaled)

let test_subsample () =
  let gen = Sched_workload.Suite.flow_uniform ~n:100 ~m:2 in
  let inst = Sched_workload.Gen.instance gen ~seed:1 in
  let rng = Sched_stats.Rng.create 9 in
  let sub = T.subsample rng ~keep:0.5 inst in
  Alcotest.(check bool) "fewer jobs" true (Instance.n sub < 100 && Instance.n sub > 0);
  (* Ids renumbered compactly. *)
  let jobs = Instance.jobs_by_release sub in
  let ids = Array.to_list (Array.map (fun (j : Job.t) -> j.Job.id) jobs) in
  Alcotest.(check (list int)) "compact ids"
    (List.init (Instance.n sub) Fun.id)
    (List.sort Int.compare ids)

let test_concat () =
  let a = Test_util.instance ~machines:2 [ (0., [| 2.; 2. |]) ] in
  let b = Test_util.instance ~machines:2 [ (0., [| 3.; 3. |]); (1., [| 1.; 1. |]) ] in
  let c = T.concat ~gap:5. a b in
  Alcotest.(check int) "job count" 3 (Instance.n c);
  let jobs = Instance.jobs_by_release c in
  Alcotest.(check bool) "b's jobs after a's horizon" true
    (jobs.(1).Job.release >= Instance.horizon a +. 5. -. 1e-9);
  Alcotest.(check bool) "fleet mismatch raises" true
    (try
       ignore (T.concat a (Test_util.instance [ (0., [| 1. |]) ]));
       false
     with Invalid_argument _ -> true)

let suite =
  [
    test_scale_time_metamorphic ();
    test_scale_time_metamorphic_thm1 ();
    test_shift_metamorphic ();
    Alcotest.test_case "scaling sizes increases flow" `Quick test_scale_sizes_increases_flow;
    Alcotest.test_case "yds energy scaling law" `Quick test_energy_scaling_law;
    Alcotest.test_case "subsample" `Quick test_subsample;
    Alcotest.test_case "concat" `Quick test_concat;
  ]
