module FR = Rejection.Flow_reject
module DF = Sched_lp.Dual_fit

let test_flow_lp_below_opt () =
  List.iter
    (fun seed ->
      let inst = Sched_workload.Suite.tiny ~seed ~n:6 ~m:2 in
      let opt = Option.get (Sched_baselines.Brute_force.optimal_flow inst) in
      match Sched_lp.Flow_lp.solve inst with
      | Some sol ->
          Alcotest.(check bool)
            (Printf.sprintf "lb %.2f <= opt %.2f" sol.Sched_lp.Flow_lp.opt_lower_bound opt)
            true
            (sol.Sched_lp.Flow_lp.opt_lower_bound <= opt +. 1e-6)
      | None -> Alcotest.fail "LP should fit the budget")
    [ 1; 2; 3; 7 ]

let test_flow_lp_single_job () =
  (* One job released at 0 with p = 2 on one machine: OPT = 2, the LP's
     fractional flow understates, so lp/2 <= 2 and lp >= p (the processing
     term alone integrates to p). *)
  let inst = Test_util.instance [ (0., [| 2. |]) ] in
  match Sched_lp.Flow_lp.solve inst with
  | Some sol ->
      Alcotest.(check bool) "lp >= p" true (sol.Sched_lp.Flow_lp.lp_value >= 2. -. 1e-6);
      Alcotest.(check bool) "lb <= opt" true (sol.Sched_lp.Flow_lp.opt_lower_bound <= 2. +. 1e-6)
  | None -> Alcotest.fail "should solve"

let test_flow_lp_budget_none () =
  let gen = Sched_workload.Suite.flow_uniform ~n:200 ~m:4 in
  let inst = Sched_workload.Gen.instance gen ~seed:1 in
  Alcotest.(check bool) "over budget -> None" true
    (Sched_lp.Flow_lp.solve ~max_variables:100 inst = None)

let certify seed eps =
  let gen = Sched_workload.Suite.flow_pareto ~n:80 ~m:3 in
  let inst = Sched_workload.Gen.instance gen ~seed in
  let trace = Sched_sim.Trace.create () in
  let schedule, st = FR.run ~trace (FR.config ~eps ()) inst in
  (* The certificate is stated at the effective (integral-threshold)
     epsilon the run actually realizes. *)
  DF.certify ~eps:(FR.effective_eps st) ~lambdas:(FR.lambdas st) inst trace schedule

let test_dual_feasibility () =
  let r = certify 42 0.25 in
  Alcotest.(check bool)
    (Printf.sprintf "dispatch-machine slack %.2e >= -1e-6" r.DF.min_slack_dispatch_machine)
    true
    (r.DF.min_slack_dispatch_machine >= -1e-6);
  Alcotest.(check bool)
    (Printf.sprintf "overall slack %.2e >= -quantum" r.DF.min_constraint_slack)
    true
    (r.DF.min_constraint_slack >= -.r.DF.counterfactual_quantum -. 1e-6);
  Alcotest.(check bool) "checked many" true (r.DF.constraints_checked > 1000)

let test_beta_identity () =
  let r = certify 7 0.3 in
  let eps = r.DF.eps in
  let expected = eps /. ((1. +. eps) ** 2.) *. r.DF.ctilde_sum in
  Alcotest.(check bool) "beta integral identity" true
    (Float.abs (r.DF.beta_integral -. expected) <= 1e-6 *. Float.max 1. expected)

let test_ctilde_dominates_flow () =
  let r = certify 11 0.2 in
  Alcotest.(check bool) "sum(C~ - r) >= algorithm flow" true
    (r.DF.ctilde_sum >= r.DF.algo_flow -. 1e-6)

let test_lambda_lower_bound () =
  let r = certify 23 0.25 in
  Alcotest.(check bool) "sum lambda >= eps/(1+eps) sum(C~-r)" true
    (r.DF.lambda_sum >= (r.DF.eps /. (1. +. r.DF.eps) *. r.DF.ctilde_sum) -. 1e-6)

let test_primal_over_dual_bounded_property () =
  QCheck.Test.make ~name:"primal/dual <= ((1+eps)/eps)^2 (Theorem 1 proof)" ~count:20
    QCheck.(pair (int_bound 1000) (float_range 0.15 0.6))
    (fun (seed, eps) ->
      let r = certify seed eps in
      let e = r.DF.eps in
      (* Lemma 4 holds strictly on each job's dispatch machine; on other
         machines the realized beta may fall one counterfactual-job
         quantum short (see Dual_fit's documentation / EXPERIMENTS.md). *)
      r.DF.min_slack_dispatch_machine >= -1e-6
      && r.DF.min_constraint_slack >= -.r.DF.counterfactual_quantum -. 1e-6
      && r.DF.primal_over_dual <= (((1. +. e) /. e) ** 2.) +. 1e-6)
  |> QCheck_alcotest.to_alcotest

let test_dual_below_lp () =
  (* Weak duality on a small instance: the dual objective built from the
     algorithm's variables is at most the (discretized) LP optimum, up to
     discretization slack. *)
  let inst = Sched_workload.Suite.tiny ~seed:3 ~n:6 ~m:2 in
  let trace = Sched_sim.Trace.create () in
  let schedule, st = FR.run ~trace (FR.config ~eps:0.25 ()) inst in
  let r = DF.certify ~eps:(FR.effective_eps st) ~lambdas:(FR.lambdas st) inst trace schedule in
  match Sched_lp.Flow_lp.solve inst with
  | Some sol ->
      Alcotest.(check bool) "dual <= lp (2% slack)" true
        (r.DF.dual_objective <= (sol.Sched_lp.Flow_lp.lp_value *. 1.02) +. 1e-6)
  | None -> Alcotest.fail "lp should solve"

let suite =
  [
    Alcotest.test_case "flow LP below OPT" `Quick test_flow_lp_below_opt;
    Alcotest.test_case "flow LP single job" `Quick test_flow_lp_single_job;
    Alcotest.test_case "flow LP budget" `Quick test_flow_lp_budget_none;
    Alcotest.test_case "dual feasibility (Lemma 4)" `Quick test_dual_feasibility;
    Alcotest.test_case "beta integral identity" `Quick test_beta_identity;
    Alcotest.test_case "C~ dominates flow" `Quick test_ctilde_dominates_flow;
    Alcotest.test_case "lambda lower bound" `Quick test_lambda_lower_bound;
    test_primal_over_dual_bounded_property ();
    Alcotest.test_case "weak duality vs LP" `Quick test_dual_below_lp;
  ]

let test_corollary1_invariant () =
  List.iter
    (fun (seed, eps) ->
      let r = certify seed eps in
      let bound = (1. /. r.DF.eps) +. 2. in
      Alcotest.(check bool)
        (Printf.sprintf "U/(R+1) = %.2f <= %.1f (eps=%g)" r.DF.corollary1_max_ratio bound eps)
        true
        (r.DF.corollary1_max_ratio <= bound +. 1e-9))
    [ (42, 0.25); (7, 0.5); (11, 0.2); (23, 1. /. 3.) ]

let suite = suite @ [ Alcotest.test_case "Corollary 1 invariant" `Quick test_corollary1_invariant ]
