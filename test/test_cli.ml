(* End-to-end tests of the rejsched executable: the telemetry/trace export
   flags and the usage-error exit convention.

   The binary is a declared test dependency, so it sits at ../bin/ relative
   to the test cwd inside _build.  The reconciliation tests rerun the same
   configuration in-process — generator, seed and policy are shared code,
   so the CLI's exported counters and trace must match exactly. *)

open Sched_model

let exe = Filename.concat ".." (Filename.concat "bin" "rejsched.exe")

let shell cmd =
  match Sys.command cmd with
  | code -> code

let read_file path = In_channel.with_open_text path In_channel.input_all

let temp suffix = Filename.temp_file "rejsched_cli" suffix

(* Pull a counter value out of the metrics JSON snapshot: find the entry
   named [name] and return the integer after its "value": field. *)
let counter_in_json json name =
  let needle = Printf.sprintf "\"name\": \"%s\"" name in
  let nlen = String.length needle and jlen = String.length json in
  let rec find i =
    if i + nlen > jlen then Alcotest.failf "counter %s not in snapshot" name
    else if String.sub json i nlen = needle then i + nlen
    else find (i + 1)
  in
  let from = find 0 in
  let vneedle = "\"value\": " in
  let vlen = String.length vneedle in
  let rec vfind i =
    if i + vlen > jlen then Alcotest.failf "no value for %s" name
    else if String.sub json i vlen = vneedle then i + vlen
    else vfind (i + 1)
  in
  let start = vfind from in
  let rec stop k =
    if k < jlen then match json.[k] with '0' .. '9' -> stop (k + 1) | _ -> k else k
  in
  int_of_string (String.sub json start (stop start - start))

(* The CLI's thm1 run on the uniform workload, replayed in-process. *)
let in_process ~n ~m ~seed ~eps =
  let inst = Sched_workload.Gen.instance (Sched_workload.Suite.flow_uniform ~n ~m) ~seed in
  let module FR = Rejection.Flow_reject in
  let trace = Sched_sim.Trace.create () in
  let s, _ = FR.run ~trace (FR.config ~eps ()) inst in
  (s, trace)

let test_unknown_policy_exits_2 () =
  let err = temp ".txt" in
  let code = shell (Printf.sprintf "%s run -p no-such-policy > /dev/null 2> %s" exe err) in
  Alcotest.(check int) "exit code" 2 code;
  Alcotest.(check bool) "message on stderr" true
    (Test_util.contains (read_file err) "unknown policy");
  Sys.remove err

let test_telemetry_reconciles_with_metrics () =
  let tel = temp ".json" in
  let code =
    shell
      (Printf.sprintf "%s run -p thm1 -w uniform -n 150 -m 3 --seed 42 --eps 0.25 --telemetry %s > /dev/null"
         exe tel)
  in
  Alcotest.(check int) "exit code" 0 code;
  let json = read_file tel in
  Sys.remove tel;
  Alcotest.(check bool) "schema tagged" true (Test_util.contains json "rejsched.metrics/1");
  let s, _ = in_process ~n:150 ~m:3 ~seed:42 ~eps:0.25 in
  let r = Metrics.rejection s in
  Alcotest.(check int) "dispatch = n" 150 (counter_in_json json "sched_dispatch_total");
  Alcotest.(check int) "reject = Metrics.rejection.count" r.Metrics.count
    (counter_in_json json "sched_reject_total");
  Alcotest.(check int) "midrun = Metrics.rejection.mid_run" r.Metrics.mid_run
    (counter_in_json json "sched_reject_midrun_total");
  Alcotest.(check int) "complete + reject = n" 150
    (counter_in_json json "sched_complete_total" + counter_in_json json "sched_reject_total")

let test_telemetry_stdout () =
  let out = temp ".txt" in
  let code =
    shell (Printf.sprintf "%s run -p spt -n 40 -m 2 --telemetry - > %s" exe out)
  in
  Alcotest.(check int) "exit code" 0 code;
  let text = read_file out in
  Sys.remove out;
  Alcotest.(check bool) "snapshot on stdout" true
    (Test_util.contains text "\"schema\": \"rejsched.metrics/1\"");
  Alcotest.(check bool) "counters present" true
    (Test_util.contains text "sched_dispatch_total");
  Alcotest.(check bool) "metrics table still printed" true
    (Test_util.contains text "total flow (completed)")

let test_trace_ndjson_matches_in_process () =
  let path = temp ".ndjson" in
  let code =
    shell
      (Printf.sprintf
         "%s run -p thm1 -w uniform -n 80 -m 2 --seed 7 --eps 0.25 --trace-ndjson %s > /dev/null"
         exe path)
  in
  Alcotest.(check int) "exit code" 0 code;
  let cli = read_file path in
  Sys.remove path;
  let _, trace = in_process ~n:80 ~m:2 ~seed:7 ~eps:0.25 in
  Alcotest.(check string) "byte-identical trace" (Sched_sim.Trace_export.to_ndjson trace) cli

(* The trace subcommand end-to-end: replay a corpus case under the flight
   recorder, and the exported NDJSON must match an in-process replay
   byte-for-byte while the Chrome document passes the Perfetto shape
   check. *)
let test_trace_subcommand_case () =
  let case_path = Filename.concat "fuzz_corpus" "restricted-flow-reject.case" in
  let ndjson = temp ".ndjson" and chrome = temp ".json" in
  let code =
    shell
      (Printf.sprintf "%s trace --case %s --out-ndjson %s --out-chrome %s 2> /dev/null" exe
         case_path ndjson chrome)
  in
  Alcotest.(check int) "exit code" 0 code;
  let cli_ndjson = read_file ndjson and cli_chrome = read_file chrome in
  Sys.remove ndjson;
  Sys.remove chrome;
  (match Sched_sim.Perfetto.validate cli_chrome with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "CLI chrome export fails validation: %s" msg);
  let case =
    match Sched_fuzz.Corpus.parse (read_file case_path) with
    | Ok c -> c
    | Error e -> Alcotest.failf "corpus case unreadable: %s" e
  in
  let entry =
    match Sched_experiments.Policy_registry.find case.Sched_fuzz.Corpus.policy with
    | Some e -> e
    | None -> Alcotest.fail "case policy not registered"
  in
  let recorder = Sched_obs.Recorder.create () in
  ignore
    (entry.Sched_experiments.Policy_registry.run_impl ~recorder
       ~impl:(Sched_sim.Driver.default_impl ()) ~check:false case.Sched_fuzz.Corpus.instance);
  Alcotest.(check string) "byte-identical ndjson"
    (Sched_sim.Trace_export.recorder_to_ndjson recorder)
    cli_ndjson;
  Alcotest.(check string) "byte-identical chrome"
    (Sched_sim.Perfetto.to_chrome
       ~machines:(Instance.m case.Sched_fuzz.Corpus.instance)
       recorder)
    cli_chrome

(* Both exports accept '-': everything lands on stdout through the shared
   sink helper, schema-tagged and shape-valid. *)
let test_trace_subcommand_stdout () =
  let out = temp ".txt" in
  let code =
    shell
      (Printf.sprintf
         "%s trace -p greedy-spt -n 20 -m 2 --seed 5 --last 8 --out-ndjson - --out-chrome - > %s 2> /dev/null"
         exe out)
  in
  Alcotest.(check int) "exit code" 0 code;
  let text = read_file out in
  Sys.remove out;
  Alcotest.(check bool) "trace/2 lines on stdout" true
    (Test_util.contains text "\"schema\":\"rejsched.trace/2\"");
  Alcotest.(check bool) "chrome document on stdout" true
    (Test_util.contains text "\"traceEvents\"")

let test_trace_ring_cap_rejected () =
  let err = temp ".txt" in
  let code =
    shell (Printf.sprintf "%s trace -n 10 -m 2 --ring-cap 0 > /dev/null 2> %s" exe err) in
  Alcotest.(check int) "exit code" 2 code;
  Alcotest.(check bool) "message on stderr" true
    (Test_util.contains (read_file err) "--ring-cap");
  Sys.remove err

(* --- serve ------------------------------------------------------------ *)

let arrival_lines =
  [
    {|{"job": 0, "release": 0.0, "sizes": [2.0, 3.0]}|};
    {|{"job": 1, "release": 0.5, "sizes": [1.0, 1.0], "weight": 2.0}|};
    {|{"job": 2, "release": 1.0, "sizes": ["Infinity", 2.5]}|};
    {|{"job": 3, "release": 4.0, "sizes": [0.5, 4.0]}|};
  ]

let write_lines path lines =
  Out_channel.with_open_text path (fun oc ->
      List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) lines)

let lines_with needle text =
  String.split_on_char '\n' text |> List.filter (fun l -> Test_util.contains l needle)

let test_serve_smoke () =
  let input = temp ".ndjson" and out = temp ".out" in
  write_lines input arrival_lines;
  let code =
    shell (Printf.sprintf "%s serve -p flow-reject -m 2 --input %s --batch 2 > %s" exe input out)
  in
  Alcotest.(check int) "exit code" 0 code;
  let text = read_file out in
  Sys.remove input;
  Sys.remove out;
  (* Every line is schema-tagged, decisions under trace/1, progress and
     the final summary under serve/1 — and each job shows up dispatched. *)
  Alcotest.(check int) "two progress lines for batch=2"
    2 (List.length (lines_with {|"type":"progress"|} text));
  Alcotest.(check int) "one closing summary"
    1 (List.length (lines_with {|"type":"closed"|} text));
  Alcotest.(check int) "four dispatch decisions"
    4 (List.length (lines_with {|"event":"dispatch"|} text));
  String.split_on_char '\n' text
  |> List.iter (fun l ->
         if String.trim l <> "" then
           match Sched_sim.Trace_export.schema_of_line l with
           | Some ("rejsched.trace/1" | "rejsched.serve/1") -> ()
           | Some other -> Alcotest.failf "unexpected schema %s" other
           | None -> Alcotest.failf "untagged serve output line: %s" l)

(* Splitting the stream across a checkpoint must replay into exactly the
   decisions and final summary of the uninterrupted serve run. *)
let test_serve_checkpoint_restore_identical () =
  let input = temp ".ndjson" and full = temp ".out" in
  let part1 = temp ".out" and part2 = temp ".out" and snap = temp ".snap" in
  write_lines input arrival_lines;
  Alcotest.(check int) "full run exits 0" 0
    (shell (Printf.sprintf "%s serve -p flow-reject -m 2 --input %s > %s" exe input full));
  let head2 = temp ".ndjson" and tail2 = temp ".ndjson" in
  write_lines head2 (List.filteri (fun k _ -> k < 2) arrival_lines);
  write_lines tail2 (List.filteri (fun k _ -> k >= 2) arrival_lines);
  Alcotest.(check int) "first half exits 0" 0
    (shell
       (Printf.sprintf "%s serve -p flow-reject -m 2 --input %s --checkpoint %s > %s" exe head2
          snap part1));
  Alcotest.(check int) "resumed half exits 0" 0
    (shell (Printf.sprintf "%s serve --restore %s --input %s > %s" exe snap tail2 part2));
  let decisions text = lines_with "rejsched.trace/1" text in
  let spliced = decisions (read_file part1) @ decisions (read_file part2) in
  Alcotest.(check (list string)) "decision stream identical across the suspend"
    (decisions (read_file full)) spliced;
  Alcotest.(check (list string)) "final summary identical across the suspend"
    (lines_with {|"type":"closed"|} (read_file full))
    (lines_with {|"type":"closed"|} (read_file part2));
  List.iter Sys.remove [ input; full; part1; part2; snap; head2; tail2 ]

let test_serve_checkpoint_stdout () =
  (* '--checkpoint -' puts the snapshot alone on stdout (NDJSON moves to
     stderr), and the result restores cleanly. *)
  let input = temp ".ndjson" and snap = temp ".snap" and out = temp ".out" in
  write_lines input (List.filteri (fun k _ -> k < 2) arrival_lines);
  Alcotest.(check int) "checkpoint to stdout exits 0" 0
    (shell
       (Printf.sprintf "%s serve -p greedy-spt -m 2 --input %s --checkpoint - > %s 2> /dev/null"
          exe input snap));
  Alcotest.(check bool) "stdout is the snapshot container" true
    (Test_util.contains (read_file snap) "rejsched-snap");
  let tail2 = temp ".ndjson" in
  write_lines tail2 (List.filteri (fun k _ -> k >= 2) arrival_lines);
  Alcotest.(check int) "restore from it exits 0" 0
    (shell (Printf.sprintf "%s serve --restore %s --input %s > %s" exe snap tail2 out));
  Alcotest.(check int) "resumed run closes"
    1 (List.length (lines_with {|"type":"closed"|} (read_file out)));
  List.iter Sys.remove [ input; snap; out; tail2 ]

let test_serve_invalid_batch_rejected () =
  List.iter
    (fun flag ->
      let err = temp ".txt" in
      let code =
        shell (Printf.sprintf "%s serve %s < /dev/null > /dev/null 2> %s" exe flag err)
      in
      Alcotest.(check int) (flag ^ " exit code") 2 code;
      Alcotest.(check bool) (flag ^ " message on stderr") true
        (Test_util.contains (read_file err) "--batch");
      Sys.remove err)
    [ "--batch 0"; "--batch=-4" ]

let test_serve_corrupt_snapshot_rejected () =
  let snap = temp ".snap" and err = temp ".txt" in
  Out_channel.with_open_bin snap (fun oc -> Out_channel.output_string oc "rejsched-snapXXXX");
  let code =
    shell (Printf.sprintf "%s serve --restore %s < /dev/null > /dev/null 2> %s" exe snap err)
  in
  Alcotest.(check int) "exit code" 2 code;
  Alcotest.(check bool) "structured error on stderr" true
    (Test_util.contains (read_file err) "cannot restore");
  Sys.remove snap;
  Sys.remove err

let test_serve_malformed_arrival_rejected () =
  let input = temp ".ndjson" and err = temp ".txt" in
  write_lines input [ {|{"job": 0, "release": |} ];
  let code =
    shell (Printf.sprintf "%s serve -m 2 --input %s > /dev/null 2> %s" exe input err)
  in
  Alcotest.(check int) "exit code" 1 code;
  Alcotest.(check bool) "parse error on stderr" true
    (Test_util.contains (read_file err) "bad arrival");
  Sys.remove input;
  Sys.remove err

let test_experiment_domains_identical () =
  (* e1 replicates over seeds on the ambient pool, so --domains actually
     changes the execution width — output must not change with it. *)
  let out1 = temp ".csv" and out2 = temp ".csv" in
  let run d out =
    shell (Printf.sprintf "%s experiment e1 --quick --csv --domains %d > %s" exe d out)
  in
  Alcotest.(check int) "exit at domains=1" 0 (run 1 out1);
  Alcotest.(check int) "exit at domains=3" 0 (run 3 out2);
  Alcotest.(check string) "byte-identical tables" (read_file out1) (read_file out2);
  Sys.remove out1;
  Sys.remove out2

let test_domains_zero_rejected () =
  let err = temp ".txt" in
  let code =
    shell (Printf.sprintf "%s experiment e1 --quick --domains 0 > /dev/null 2> %s" exe err)
  in
  Alcotest.(check int) "exit code" 2 code;
  Alcotest.(check bool) "message on stderr" true
    (Test_util.contains (read_file err) "--domains");
  Sys.remove err

let test_domains_negative_rejected () =
  let err = temp ".txt" in
  let code =
    shell (Printf.sprintf "%s experiment e1 --quick --domains=-2 > /dev/null 2> %s" exe err)
  in
  Alcotest.(check int) "exit code" 2 code;
  Alcotest.(check bool) "message on stderr" true
    (Test_util.contains (read_file err) "--domains");
  Sys.remove err

let test_shards_invalid_rejected () =
  List.iter
    (fun flag ->
      let err = temp ".txt" in
      let code = shell (Printf.sprintf "%s run %s > /dev/null 2> %s" exe flag err) in
      Alcotest.(check int) (flag ^ " exit code") 2 code;
      Alcotest.(check bool) (flag ^ " message on stderr") true
        (Test_util.contains (read_file err) "--shards");
      Sys.remove err)
    [ "--shards 0"; "--shards=-3" ]

let test_run_shards_identical () =
  (* The sharded driver must be unobservable from the CLI: the metrics
     table at S = 4 is byte-identical to the unsharded run. *)
  let out1 = temp ".csv" and out2 = temp ".csv" in
  let run extra out =
    shell (Printf.sprintf "%s run -p thm1 -n 150 -m 8 --csv %s > %s" exe extra out)
  in
  Alcotest.(check int) "exit unsharded" 0 (run "" out1);
  Alcotest.(check int) "exit at S=4" 0 (run "--shards 4" out2);
  Alcotest.(check string) "byte-identical metrics" (read_file out1) (read_file out2);
  Sys.remove out1;
  Sys.remove out2

let suite =
  [
    Alcotest.test_case "unknown policy exits 2" `Quick test_unknown_policy_exits_2;
    Alcotest.test_case "experiment output independent of --domains" `Slow
      test_experiment_domains_identical;
    Alcotest.test_case "--domains 0 rejected" `Quick test_domains_zero_rejected;
    Alcotest.test_case "--domains negative rejected" `Quick test_domains_negative_rejected;
    Alcotest.test_case "--shards 0/negative rejected" `Quick test_shards_invalid_rejected;
    Alcotest.test_case "run output independent of --shards" `Quick test_run_shards_identical;
    Alcotest.test_case "telemetry counters reconcile" `Quick test_telemetry_reconciles_with_metrics;
    Alcotest.test_case "telemetry to stdout" `Quick test_telemetry_stdout;
    Alcotest.test_case "trace ndjson matches in-process" `Quick test_trace_ndjson_matches_in_process;
    Alcotest.test_case "trace subcommand replays a corpus case" `Quick test_trace_subcommand_case;
    Alcotest.test_case "trace subcommand to stdout" `Quick test_trace_subcommand_stdout;
    Alcotest.test_case "trace --ring-cap 0 rejected" `Quick test_trace_ring_cap_rejected;
    Alcotest.test_case "serve smoke: schema-tagged decision stream" `Quick test_serve_smoke;
    Alcotest.test_case "serve checkpoint/restore splices byte-identically" `Quick
      test_serve_checkpoint_restore_identical;
    Alcotest.test_case "serve --checkpoint - owns stdout" `Quick test_serve_checkpoint_stdout;
    Alcotest.test_case "serve --batch 0/negative rejected" `Quick test_serve_invalid_batch_rejected;
    Alcotest.test_case "serve --restore corrupt snapshot exits 2" `Quick
      test_serve_corrupt_snapshot_rejected;
    Alcotest.test_case "serve malformed arrival exits 1" `Quick
      test_serve_malformed_arrival_rejected;
  ]
