open Sched_experiments

let test_registry_complete () =
  Alcotest.(check int) "thirteen experiments" 13 (List.length Registry.all);
  let ids = List.map (fun e -> e.Registry.id) Registry.all in
  Alcotest.(check (list string)) "expected ids"
    [ "e1"; "e2"; "e3"; "e4"; "e5"; "e6"; "e7"; "e8"; "e9"; "e11"; "e12"; "e13"; "e14" ]
    ids;
  Alcotest.(check int) "ids unique" (List.length ids)
    (List.length (List.sort_uniq String.compare ids))

let test_find () =
  Alcotest.(check bool) "find e3" true (Registry.find "e3" <> None);
  Alcotest.(check bool) "unknown" true (Registry.find "e42" = None)

let table_testable = Alcotest.testable (fun ppf t -> Fmt.string ppf (Sched_stats.Table.title t)) ( == )

let run_and_check entry =
  let tables = entry.Registry.run ~quick:true in
  Alcotest.(check bool) "at least one table" true (tables <> []);
  List.iter
    (fun t ->
      let cols = List.length (Sched_stats.Table.columns t) in
      Alcotest.(check bool) "has rows" true (Sched_stats.Table.rows t <> []);
      List.iter
        (fun row -> Alcotest.(check int) "row width" cols (List.length row))
        (Sched_stats.Table.rows t);
      (* Any ok/in-band verdict column must be all-"yes": these encode the
         paper's claims. *)
      let headers = Sched_stats.Table.columns t in
      List.iter
        (fun row ->
          List.iter2
            (fun h cell ->
              if h = "ok" || h = "in-band" || h = "budget-ok" then
                Alcotest.(check string) (Sched_stats.Table.title t ^ ": claim holds") "yes"
                  (String.trim cell))
            headers row)
        (Sched_stats.Table.rows t))
    tables

let experiment_cases =
  List.map
    (fun e ->
      Alcotest.test_case (e.Registry.id ^ " " ^ e.Registry.title) `Slow (fun () ->
          run_and_check e))
    Registry.all

let suite =
  [
    Alcotest.test_case "registry complete" `Quick test_registry_complete;
    Alcotest.test_case "registry find" `Quick test_find;
  ]
  @ experiment_cases

let _ = table_testable
