open Sched_experiments

let test_registry_complete () =
  Alcotest.(check int) "fourteen experiments" 14 (List.length Registry.all);
  let ids = List.map (fun e -> e.Registry.id) Registry.all in
  Alcotest.(check (list string)) "expected ids"
    [ "e1"; "e2"; "e3"; "e4"; "e5"; "e6"; "e7"; "e8"; "e9"; "e11"; "e12"; "e13"; "e14"; "e15" ]
    ids;
  Alcotest.(check int) "ids unique" (List.length ids)
    (List.length (List.sort_uniq String.compare ids))

let test_find () =
  Alcotest.(check bool) "find e3" true (Registry.find "e3" <> None);
  Alcotest.(check bool) "unknown" true (Registry.find "e42" = None)

let table_testable = Alcotest.testable (fun ppf t -> Fmt.string ppf (Sched_stats.Table.title t)) ( == )

let run_and_check entry =
  let tables = entry.Registry.run ~obs:None ~quick:true in
  Alcotest.(check bool) "at least one table" true (tables <> []);
  List.iter
    (fun t ->
      let cols = List.length (Sched_stats.Table.columns t) in
      Alcotest.(check bool) "has rows" true (Sched_stats.Table.rows t <> []);
      List.iter
        (fun row -> Alcotest.(check int) "row width" cols (List.length row))
        (Sched_stats.Table.rows t);
      (* Any ok/in-band verdict column must be all-"yes": these encode the
         paper's claims. *)
      let headers = Sched_stats.Table.columns t in
      List.iter
        (fun row ->
          List.iter2
            (fun h cell ->
              if h = "ok" || h = "in-band" || h = "budget-ok" then
                Alcotest.(check string) (Sched_stats.Table.title t ^ ": claim holds") "yes"
                  (String.trim cell))
            headers row)
        (Sched_stats.Table.rows t))
    tables

(* --- run_all fan-out: determinism across domain counts ----------------- *)

(* One signature per suite run: every table as CSV plus the merged
   telemetry export.  Byte equality of both across sequential and pooled
   runs is the pool's correctness contract. *)
let suite_signature ?pool () =
  let registry = Sched_obs.Registry.create () in
  let obs = Sched_obs.Obs.create ~registry () in
  let results = Registry.run_all ~quick:true ~obs ~only:[ "e1"; "e7"; "e13" ] ?pool () in
  let csv =
    String.concat ""
      (List.concat_map (fun (_, ts) -> List.map Sched_stats.Table.to_csv ts) results)
  in
  (csv, Sched_obs.Export.json registry)

let test_run_all_differential () =
  let seq_csv, seq_json = suite_signature () in
  Alcotest.(check bool) "telemetry recorded" true (String.length seq_json > 2);
  List.iter
    (fun domains ->
      Sched_stats.Pool.with_pool ~domains (fun pool ->
          let csv, json = suite_signature ~pool () in
          Alcotest.(check string) (Printf.sprintf "tables at domains=%d" domains) seq_csv csv;
          Alcotest.(check string) (Printf.sprintf "telemetry at domains=%d" domains) seq_json json))
    [ 1; 2; 4 ]

let test_run_all_only_and_counters () =
  let registry = Sched_obs.Registry.create () in
  let obs = Sched_obs.Obs.create ~registry () in
  let results = Registry.run_all ~quick:true ~obs ~only:[ "e7"; "nope" ] () in
  Alcotest.(check (list string)) "unknown ids ignored" [ "e7" ]
    (List.map (fun (e, _) -> e.Registry.id) results);
  let tables = List.concat_map snd results in
  let total_rows =
    List.fold_left (fun acc t -> acc + List.length (Sched_stats.Table.rows t)) 0 tables
  in
  let counter name =
    match Sched_obs.Registry.find registry ~name ~labels:[ ("experiment", "e7") ] with
    | Some { Sched_obs.Registry.instrument = Sched_obs.Registry.Counter c; _ } ->
        Sched_obs.Metric.Counter.value c
    | _ -> Alcotest.failf "missing structural counter %s" name
  in
  Alcotest.(check (float 0.)) "tables counted"
    (float_of_int (List.length tables))
    (counter "exp_tables_total");
  Alcotest.(check (float 0.)) "rows counted" (float_of_int total_rows) (counter "exp_rows_total")

let experiment_cases =
  List.map
    (fun e ->
      Alcotest.test_case (e.Registry.id ^ " " ^ e.Registry.title) `Slow (fun () ->
          run_and_check e))
    Registry.all

let suite =
  [
    Alcotest.test_case "registry complete" `Quick test_registry_complete;
    Alcotest.test_case "registry find" `Quick test_find;
    Alcotest.test_case "run_all: byte-identical across domain counts" `Slow
      test_run_all_differential;
    Alcotest.test_case "run_all: only filter and structural counters" `Quick
      test_run_all_only_and_counters;
  ]
  @ experiment_cases

let _ = table_testable
