module B = Rejection.Bounds

let test_flow_competitive () =
  (* eps = 1 is out of range; eps = 0.5 -> 2 * 3^2 = 18. *)
  Alcotest.(check (float 1e-9)) "eps=0.5" 18. (B.flow_competitive ~eps:0.5);
  Alcotest.(check (float 1e-9)) "eps=0.1" (2. *. (11. ** 2.)) (B.flow_competitive ~eps:0.1)

let test_flow_budget () =
  Alcotest.(check (float 1e-12)) "budget" 0.5 (B.flow_rejection_budget ~eps:0.25)

let test_thresholds () =
  Alcotest.(check int) "rule1 eps=0.5" 2 (B.rule1_threshold ~eps:0.5);
  Alcotest.(check int) "rule1 eps=0.3" 4 (B.rule1_threshold ~eps:0.3);
  Alcotest.(check int) "rule2 eps=0.5" 3 (B.rule2_threshold ~eps:0.5);
  Alcotest.(check int) "rule2 eps=0.25" 5 (B.rule2_threshold ~eps:0.25)

let test_monotone_in_eps () =
  (* The bound degrades as eps shrinks (less rejection allowed). *)
  Alcotest.(check bool) "monotone" true
    (B.flow_competitive ~eps:0.1 > B.flow_competitive ~eps:0.2
    && B.flow_competitive ~eps:0.2 > B.flow_competitive ~eps:0.4)

let test_eps_validation () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "eps=0" true (raises (fun () -> B.flow_competitive ~eps:0.));
  Alcotest.(check bool) "eps=1" true (raises (fun () -> B.flow_competitive ~eps:1.));
  Alcotest.(check bool) "alpha<=1" true (raises (fun () -> B.gamma ~eps:0.5 ~alpha:1.))

let test_gamma_positive () =
  List.iter
    (fun alpha ->
      List.iter
        (fun eps ->
          let g = B.gamma ~eps ~alpha in
          Alcotest.(check bool) "gamma positive finite" true (g > 0. && Float.is_finite g))
        [ 0.1; 0.3; 0.5; 0.9 ])
    [ 1.2; 1.6; 2.; 3.; 5. ]

let test_flow_energy_ratio_shape () =
  (* The ratio is infinite for tiny gamma (denominator <= 0) and finite at
     the optimized gamma. *)
  Alcotest.(check bool) "tiny gamma infeasible" true
    (B.flow_energy_ratio ~eps:0.25 ~alpha:3. ~gamma:1e-6 = Float.infinity);
  let g = B.gamma_best ~eps:0.25 ~alpha:3. in
  let r = B.flow_energy_ratio ~eps:0.25 ~alpha:3. ~gamma:g in
  Alcotest.(check bool) "optimized finite" true (Float.is_finite r && r > 1.)

let test_gamma_best_is_no_worse_than_papers () =
  List.iter
    (fun (eps, alpha) ->
      let paper = B.gamma ~eps ~alpha in
      let best = B.gamma_best ~eps ~alpha in
      Alcotest.(check bool) "best <= paper's choice" true
        (B.flow_energy_ratio ~eps ~alpha ~gamma:best
        <= B.flow_energy_ratio ~eps ~alpha ~gamma:paper +. 1e-6))
    [ (0.25, 3.); (0.5, 3.); (0.1, 2.5); (0.4, 4.) ]

let test_flow_energy_competitive_grows_as_envelope () =
  (* Ratio should grow when eps shrinks, roughly like the envelope. *)
  let r1 = B.flow_energy_competitive ~eps:0.1 ~alpha:3. in
  let r2 = B.flow_energy_competitive ~eps:0.5 ~alpha:3. in
  Alcotest.(check bool) "monotone in eps" true (r1 > r2);
  let e1 = B.flow_energy_envelope ~eps:0.1 ~alpha:3. in
  Alcotest.(check bool) "at least envelope order" true (r1 > e1)

let test_energy_bounds () =
  Alcotest.(check (float 1e-9)) "alpha^alpha" 27. (B.energy_competitive ~alpha:3.);
  Alcotest.(check (float 1e-9)) "(alpha/9)^alpha" ((1. /. 3.) ** 3.) (B.energy_lb ~alpha:3.);
  Alcotest.(check bool) "lb < ub" true (B.energy_lb ~alpha:5. < B.energy_competitive ~alpha:5.)

let test_smooth_constants () =
  Alcotest.(check (float 1e-12)) "mu" (2. /. 3.) (B.smooth_mu ~alpha:3.);
  Alcotest.(check (float 1e-9)) "lambda" 9. (B.smooth_lambda ~alpha:3.)

let test_immediate_lb () =
  Alcotest.(check (float 1e-9)) "sqrt" 8. (B.immediate_rejection_lb ~delta:64.)

let suite =
  [
    Alcotest.test_case "flow competitive" `Quick test_flow_competitive;
    Alcotest.test_case "flow budget" `Quick test_flow_budget;
    Alcotest.test_case "rule thresholds" `Quick test_thresholds;
    Alcotest.test_case "monotone in eps" `Quick test_monotone_in_eps;
    Alcotest.test_case "eps validation" `Quick test_eps_validation;
    Alcotest.test_case "gamma positive" `Quick test_gamma_positive;
    Alcotest.test_case "flow-energy ratio shape" `Quick test_flow_energy_ratio_shape;
    Alcotest.test_case "gamma_best beats paper's gamma" `Quick test_gamma_best_is_no_worse_than_papers;
    Alcotest.test_case "flow-energy bound growth" `Quick test_flow_energy_competitive_grows_as_envelope;
    Alcotest.test_case "energy bounds" `Quick test_energy_bounds;
    Alcotest.test_case "smooth constants" `Quick test_smooth_constants;
    Alcotest.test_case "immediate-rejection lb" `Quick test_immediate_lb;
  ]
