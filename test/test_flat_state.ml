(* Property tests for the flat core's data structures: Flat_state's
   instance mirror, the int-encoded event keys, and the two flat heaps —
   each checked against its boxed counterpart or an algebraic law. *)

open Sched_model
open Sched_sim
module Rng = Sched_stats.Rng
module Key = Pqueue.Events.Key

let qtest t = QCheck_alcotest.to_alcotest t

(* --- of_instance / accessor round-trip ---------------------------------- *)

let random_instance_of seed =
  let weighted = seed land 1 = 1 and restricted = seed mod 3 = 0 in
  Test_util.random_instance ~weighted ~restricted ~seed ~n:(5 + (seed mod 40))
    ~m:(1 + (seed mod 5)) ()

let prop_of_instance_round_trip =
  QCheck.Test.make ~name:"of_instance mirrors every job/machine column" ~count:60
    QCheck.(int_bound 10_000)
    (fun seed ->
      let instance = random_instance_of seed in
      let fs = Flat_state.of_instance instance in
      let n = Instance.n instance and m = Instance.m instance in
      assert (Flat_state.n fs = n);
      assert (Flat_state.m fs = m);
      assert (Float.equal (Flat_state.total_weight fs) (Instance.total_weight instance));
      Array.iter
        (fun (j : Job.t) ->
          let id = j.Job.id in
          assert ((Flat_state.job fs id).Job.id = id);
          assert (Float.equal (Flat_state.release fs id) j.Job.release);
          assert (Float.equal (Flat_state.weight fs id) j.Job.weight);
          assert (Float.equal (Flat_state.min_size fs id) (Job.min_size j));
          for i = 0 to m - 1 do
            let p = Job.size j i in
            assert (Float.equal (Flat_state.size fs ~machine:i ~job:id) p);
            assert (Flat_state.eligible fs ~machine:i ~job:id = Job.eligible j i);
            assert (
              Float.equal (Flat_state.density fs ~machine:i ~job:id) (j.Job.weight /. p))
          done;
          (* Before any event, every job is unreleased. *)
          assert (Flat_state.loc fs id = Flat_state.loc_unreleased))
        (Instance.jobs_by_release instance);
      for i = 0 to m - 1 do
        let mc = Instance.machine instance i in
        assert (Float.equal (Flat_state.mach_speed fs i) mc.Machine.speed);
        assert (Float.equal (Flat_state.alpha fs i) mc.Machine.alpha)
      done;
      Flat_state.invariant fs)

(* --- loc code algebra --------------------------------------------------- *)

let prop_loc_codes =
  QCheck.Test.make ~name:"loc pending/running codes decode to their machine" ~count:200
    QCheck.(int_bound 100_000)
    (fun machine ->
      let p = Flat_state.loc_pending ~machine and r = Flat_state.loc_running ~machine in
      Flat_state.loc_is_pending p
      && (not (Flat_state.loc_is_running p))
      && Flat_state.loc_is_running r
      && (not (Flat_state.loc_is_pending r))
      && Flat_state.loc_machine p = machine
      && Flat_state.loc_machine r = machine
      && p <> r
      && (not (Flat_state.loc_is_pending Flat_state.loc_unreleased))
      && (not (Flat_state.loc_is_running Flat_state.loc_settled)))

(* --- event-key encode/decode bijection ---------------------------------- *)

(* QCheck's int_bound caps below the 40/42-bit ranges, so wide values are
   composed from two independent 20/22-bit halves — uniform over the whole
   encodable range. *)
let wide_seq = QCheck.(map (fun (hi, lo) -> (hi lsl 20) lor lo) (pair (int_bound 0xFFFFF) (int_bound 0xFFFFF)))

let wide_epoch =
  QCheck.(map (fun (hi, lo) -> (hi lsl 20) lor lo) (pair (int_bound 0x3FFFFF) (int_bound 0xFFFFF)))

let prop_tag_round_trip =
  QCheck.Test.make ~name:"tag encode/decode bijection over the full seq range" ~count:500
    wide_seq
    (fun seq ->
      let at = Key.arrival_tag ~seq and ft = Key.finish_tag ~seq in
      Key.is_arrival ~tag:at
      && (not (Key.is_arrival ~tag:ft))
      && Key.seq_of ~tag:at = seq
      && Key.seq_of ~tag:ft = seq
      && at <> ft)

let prop_payload_round_trip =
  QCheck.Test.make ~name:"finish payload encode/decode bijection" ~count:500
    QCheck.(pair (int_bound 0xFFFFF) wide_epoch)
    (fun (machine, epoch) ->
      let payload = Key.finish_payload ~machine ~epoch in
      Key.machine_of ~payload = machine && Key.epoch_of ~payload = epoch)

let test_key_edges () =
  (* Extremes of every encodable range survive the round trip... *)
  List.iter
    (fun seq ->
      Alcotest.(check int) "seq" seq (Key.seq_of ~tag:(Key.arrival_tag ~seq));
      Alcotest.(check int) "seq" seq (Key.seq_of ~tag:(Key.finish_tag ~seq)))
    [ 0; 1; Key.max_seq ];
  List.iter
    (fun (machine, epoch) ->
      let payload = Key.finish_payload ~machine ~epoch in
      Alcotest.(check int) "machine" machine (Key.machine_of ~payload);
      Alcotest.(check int) "epoch" epoch (Key.epoch_of ~payload))
    [ (0, 0); (Key.max_machine, 0); (0, Key.max_epoch); (Key.max_machine, Key.max_epoch) ];
  (* ...and one past each raises. *)
  let must_raise what f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s accepted an out-of-range value" what
  in
  must_raise "finish_tag" (fun () -> Key.finish_tag ~seq:(Key.max_seq + 1));
  must_raise "arrival_tag" (fun () -> Key.arrival_tag ~seq:(Key.max_seq + 1));
  must_raise "finish_tag neg" (fun () -> Key.finish_tag ~seq:(-1));
  must_raise "payload machine" (fun () ->
      Key.finish_payload ~machine:(Key.max_machine + 1) ~epoch:0);
  must_raise "payload epoch" (fun () ->
      Key.finish_payload ~machine:0 ~epoch:(Key.max_epoch + 1))

(* --- Key.compare is a total order --------------------------------------- *)

(* Dyadic keys from a tiny grid (plus -0.) force heavy key collisions so the
   tag leg of the order actually gets exercised. *)
let ev_arb =
  QCheck.(
    map
      (fun (k8, tag, neg) ->
        let key = if neg && k8 = 0 then -0. else float_of_int (k8 - 4) /. 4. in
        (key, tag))
      (triple (int_bound 8) (int_bound 30) bool))

let sign x = compare x 0

let prop_key_total_order =
  QCheck.Test.make ~name:"Key.compare is a total order (tags decide ties)" ~count:2000
    QCheck.(triple ev_arb ev_arb ev_arb)
    (fun ((ka, ta), (kb, tb), (kc, tc)) ->
      let c (k1, t1) (k2, t2) = Key.compare k1 t1 k2 t2 in
      let ab = c (ka, ta) (kb, tb)
      and ba = c (kb, tb) (ka, ta)
      and bc = c (kb, tb) (kc, tc)
      and ac = c (ka, ta) (kc, tc) in
      (* reflexivity, antisymmetry, transitivity, tag-decides-totality *)
      c (ka, ta) (ka, ta) = 0
      && sign ab = -sign ba
      && (not (ab <= 0 && bc <= 0) || ac <= 0)
      && (not (ab >= 0 && bc >= 0) || ac >= 0)
      && (ab <> 0 || (Float.equal (Float.abs ka) (Float.abs kb) && ta = tb)))

let test_key_negative_zero () =
  (* Primitive float comparison: -0. and 0. are the same key, so the tag
     decides — matching the boxed heap's behaviour. *)
  Alcotest.(check int) "-0. = 0., tag decides" (-1) (Key.compare (-0.) 1 0. 2);
  Alcotest.(check int) "equal" 0 (Key.compare (-0.) 7 0. 7)

(* --- Events pops in Key.compare order, agreeing with the boxed heap ----- *)

let prop_events_matches_boxed =
  QCheck.Test.make ~name:"Events pops the boxed heap's exact sequence" ~count:300
    QCheck.(pair (list_of_size Gen.(int_bound 60) ev_arb) (int_bound 1_000_000))
    (fun (evs, salt) ->
      (* Tags must be unique while queued: replace the generated tag by a
         per-element rank drawn from a salted shuffle, keeping ties on keys. *)
      let evs = Array.of_list evs in
      let rng = Rng.create salt in
      let order = Array.init (Array.length evs) Fun.id in
      Rng.shuffle rng order;
      let boxed = Pqueue.create () and flat = Pqueue.Events.create () in
      Array.iteri
        (fun k i ->
          let key, _ = evs.(i) in
          let tag = order.(k) in
          Pqueue.push boxed ~key ~tag k;
          Pqueue.Events.push flat ~key ~tag ~payload:k)
        order;
      let rec drain () =
        match Pqueue.pop boxed with
        | None -> Pqueue.Events.is_empty flat
        | Some (k, t, p) ->
            Pqueue.Events.pop flat
            && Float.equal (Pqueue.Events.key flat) k
            && Pqueue.Events.tag flat = t
            && Pqueue.Events.payload flat = p
            && drain ()
      in
      Array.length evs = Pqueue.Events.size flat && drain ())

(* --- Iheap reproduces Indexed's slot layout exactly ---------------------- *)

(* The driver exposes heap-array order to policies (pending_iter), so the
   flat heap must not merely agree on the minimum: after any operation
   sequence the two heap arrays must match slot for slot. *)
(* Named comparators (RJL002 trusts audited named functions, and the
   primitive float comparisons are deliberate: this is the drivers'
   comparison semantics). *)
let float_cmp (a : float) (b : float) = if a < b then -1 else if a > b then 1 else 0

let keyed_less (keys : float array) a b =
  let ka = keys.(a) and kb = keys.(b) in
  if ka < kb then true else if ka > kb then false else a < b

let int_less (a : int) (b : int) = a < b

let prop_iheap_layout_identity =
  QCheck.Test.make ~name:"Iheap slot layout = Indexed slot layout, always" ~count:150
    QCheck.(int_bound 1_000_000)
    (fun salt ->
      let rng = Rng.create salt in
      let nids = 2 + Rng.int rng 40 in
      (* Keys from a coarse dyadic grid: collisions are the interesting case. *)
      let keys = Array.init nids (fun _ -> float_of_int (Rng.int rng 8) /. 4.) in
      let boxed = Pqueue.Indexed.create ~cmp:float_cmp () in
      let flat = Pqueue.Iheap.create ~less:(keyed_less keys) () in
      let present = Array.make nids false in
      let layouts_match () =
        Pqueue.Iheap.size flat = Pqueue.Indexed.size boxed
        && begin
             let slots = ref [] in
             Pqueue.Indexed.iter boxed ~f:(fun id _ () -> slots := id :: !slots);
             let expect = Array.of_list (List.rev !slots) in
             let ok = ref true in
             Array.iteri (fun s id -> if Pqueue.Iheap.get flat s <> id then ok := false) expect;
             !ok
           end
        && Pqueue.Iheap.min_id flat
           = (match Pqueue.Indexed.min_elt boxed with Some (id, _, ()) -> id | None -> -1)
        && Pqueue.Iheap.invariant flat
        && Pqueue.Indexed.invariant boxed
      in
      let steps = 30 + Rng.int rng 200 in
      let ok = ref (layouts_match ()) in
      for _ = 1 to steps do
        let id = Rng.int rng nids in
        if present.(id) then begin
          assert (Pqueue.Iheap.remove flat ~id);
          assert (Pqueue.Indexed.remove boxed ~id <> None);
          present.(id) <- false
        end
        else begin
          Pqueue.Iheap.add flat ~id;
          Pqueue.Indexed.add boxed ~id ~key:keys.(id) ();
          present.(id) <- true
        end;
        if not (layouts_match ()) then ok := false
      done;
      !ok)

let test_iheap_errors () =
  let h = Pqueue.Iheap.create ~less:int_less () in
  Pqueue.Iheap.add h ~id:3;
  (match Pqueue.Iheap.add h ~id:3 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "duplicate add accepted");
  (match Pqueue.Iheap.add h ~id:(-1) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "negative id accepted");
  Alcotest.(check bool) "absent remove" false (Pqueue.Iheap.remove h ~id:7);
  Alcotest.(check bool) "present remove" true (Pqueue.Iheap.remove h ~id:3);
  Alcotest.(check int) "empty min" (-1) (Pqueue.Iheap.min_id h)

(* --- Flat_state pending aggregates pin to zero --------------------------- *)

let test_pending_zero_pin () =
  let instance =
    Test_util.instance ~machines:2 [ (0., [| 0.25; 0.5 |]); (0., [| 1.25; 0.75 |]) ]
  in
  let fs = Flat_state.of_instance instance in
  Flat_state.pend_add fs 0 0;
  Flat_state.pend_add fs 0 1;
  Alcotest.(check int) "count" 2 (Flat_state.pend_count fs 0);
  Alcotest.(check (float 0.)) "work" 1.5 (Flat_state.pend_work fs 0);
  Alcotest.(check bool) "remove" true (Flat_state.pend_remove fs 0 1);
  Alcotest.(check bool) "remove" true (Flat_state.pend_remove fs 0 0);
  (* Emptying the queue pins work/weight to exactly 0., not a rounding
     residue — same discipline as the boxed driver. *)
  Alcotest.(check bool) "work pinned" true (Float.equal 0. (Flat_state.pend_work fs 0));
  Alcotest.(check bool) "weight pinned" true (Float.equal 0. (Flat_state.pend_weight fs 0));
  Alcotest.(check int) "empty heads" (-1) (Flat_state.head_spt fs 0);
  Alcotest.(check bool) "invariant" true (Flat_state.invariant fs)

let suite =
  [
    qtest prop_of_instance_round_trip;
    qtest prop_loc_codes;
    qtest prop_tag_round_trip;
    qtest prop_payload_round_trip;
    Alcotest.test_case "key range edges + out-of-range raises" `Quick test_key_edges;
    qtest prop_key_total_order;
    Alcotest.test_case "-0. keys equal 0. keys" `Quick test_key_negative_zero;
    qtest prop_events_matches_boxed;
    qtest prop_iheap_layout_identity;
    Alcotest.test_case "Iheap id errors" `Quick test_iheap_errors;
    Alcotest.test_case "pending aggregates pin to zero" `Quick test_pending_zero_pin;
  ]
