(* Flight-recorder unit and integration tests: the ring's slot protocol
   and wrap behaviour, the recorder's reserve/decode round-trip (including
   the stale-cell masking that makes overwritten slots safe), the
   rejsched.trace/2 NDJSON goldens and their /1 compatibility contract,
   the schema-tag round-trip, non-finite float payloads, the Chrome
   trace_event export shape, and the provenance columns reconciling with
   the driver's live metrics on real runs. *)

open Sched_model
module Ring = Sched_obs.Ring
module Rec = Sched_obs.Recorder
module TE = Sched_sim.Trace_export
module P = Sched_experiments.Policy_registry

(* --- Ring -------------------------------------------------------------- *)

let test_ring_create_validation () =
  Alcotest.(check bool) "capacity 0" true
    (match Ring.create ~int_cols:1 ~float_cols:1 ~capacity:0 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "negative capacity" true
    (match Ring.create ~int_cols:1 ~float_cols:1 ~capacity:(-4) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "negative columns" true
    (match Ring.create ~int_cols:(-1) ~float_cols:0 ~capacity:4 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* Zero columns of either type is legal — the other family still works. *)
  let r = Ring.create ~int_cols:0 ~float_cols:1 ~capacity:2 in
  let s = Ring.append r in
  Ring.set_float r ~col:0 ~slot:s 1.5;
  Alcotest.(check (float 0.)) "float-only ring" 1.5 (Ring.get_float r ~col:0 0)

(* Appends past capacity overwrite oldest-first; readers see a sliding
   window whose absolute position [first_seq] reports. *)
let test_ring_wrap () =
  let r = Ring.create ~int_cols:2 ~float_cols:1 ~capacity:3 in
  for k = 0 to 4 do
    let slot = Ring.append r in
    Ring.set_int r ~col:0 ~slot (10 * k);
    Ring.set_int r ~col:1 ~slot (-k);
    Ring.set_float r ~col:0 ~slot (float_of_int k /. 4.)
  done;
  Alcotest.(check int) "total" 5 (Ring.total r);
  Alcotest.(check int) "length capped" 3 (Ring.length r);
  Alcotest.(check int) "first_seq" 2 (Ring.first_seq r);
  (* Retained entries are 2, 3, 4 oldest-first. *)
  List.iteri
    (fun i k ->
      Alcotest.(check int) "col0" (10 * k) (Ring.get_int r ~col:0 i);
      Alcotest.(check int) "col1" (-k) (Ring.get_int r ~col:1 i);
      Alcotest.(check (float 0.)) "float" (float_of_int k /. 4.) (Ring.get_float r ~col:0 i))
    [ 2; 3; 4 ];
  Alcotest.(check bool) "index below range" true
    (match Ring.get_int r ~col:0 (-1) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "index above range" true
    (match Ring.get_int r ~col:0 3 with exception Invalid_argument _ -> true | _ -> false);
  Ring.clear r;
  Alcotest.(check int) "cleared total" 0 (Ring.total r);
  Alcotest.(check int) "cleared length" 0 (Ring.length r)

(* The power-of-two fast path ([land] mask) and the generic path ([mod])
   must produce the same slot sequence for their respective capacities. *)
let test_ring_slot_sequence () =
  List.iter
    (fun cap ->
      let r = Ring.create ~int_cols:1 ~float_cols:0 ~capacity:cap in
      for k = 0 to (3 * cap) + 1 do
        Alcotest.(check int)
          (Printf.sprintf "cap %d append %d" cap k)
          (k mod cap) (Ring.append r)
      done)
    [ 1; 2; 4; 8; 3; 5; 6; 7 ]

(* --- Recorder ---------------------------------------------------------- *)

(* One entry of every kind, floats stored through the row-base protocol,
   decoded back field-for-field. *)
let test_recorder_round_trip () =
  let rc = Rec.create ~capacity:8 () in
  let b = Rec.reserve_dispatch rc ~job:3 ~machine:1 ~cands:2 ~mask:0b101 in
  rc.Rec.floats.(b + Rec.o_time) <- 0.5;
  rc.Rec.floats.(b + Rec.o_value) <- 2.25;
  rc.Rec.floats.(b + Rec.o_score) <- 3.75;
  let b = Rec.reserve_start rc ~job:3 ~machine:1 in
  rc.Rec.floats.(b + Rec.o_time) <- 0.5;
  rc.Rec.floats.(b + Rec.o_value) <- 1.;
  rc.Rec.floats.(b + Rec.o_score) <- 4.5;
  let b = Rec.reserve_reject rc ~job:7 ~machine:0 ~was_running:true ~rejected:2 in
  rc.Rec.floats.(b + Rec.o_time) <- 1.5;
  rc.Rec.floats.(b + Rec.o_value) <- 0.75;
  rc.Rec.floats.(b + Rec.o_budget) <- 6.5;
  let b = Rec.reserve_restart rc ~job:4 ~machine:2 in
  rc.Rec.floats.(b + Rec.o_time) <- 2.;
  rc.Rec.floats.(b + Rec.o_value) <- 1.25;
  let b = Rec.reserve_complete rc ~job:3 ~machine:1 in
  rc.Rec.floats.(b + Rec.o_time) <- 5.;
  rc.Rec.floats.(b + Rec.o_value) <- 4.5;
  Alcotest.(check int) "total" 5 (Rec.total rc);
  Alcotest.(check int) "dropped" 0 (Rec.dropped rc);
  match Rec.entries rc with
  | [ d; s; rj; rs; c ] ->
      Alcotest.(check int) "seq monotone" 0 d.Rec.seq;
      Alcotest.(check bool) "dispatch kind" true (d.Rec.kind = Rec.Dispatch);
      Alcotest.(check int) "dispatch job" 3 d.Rec.job;
      Alcotest.(check int) "dispatch machine" 1 d.Rec.machine;
      Alcotest.(check int) "dispatch cands" 2 d.Rec.flag;
      Alcotest.(check int) "dispatch mask" 0b101 d.Rec.aux;
      Alcotest.(check (float 0.)) "dispatch work" 2.25 d.Rec.value;
      Alcotest.(check (float 0.)) "dispatch score" 3.75 d.Rec.score;
      Alcotest.(check bool) "start kind" true (s.Rec.kind = Rec.Start);
      Alcotest.(check (float 0.)) "start size" 4.5 s.Rec.score;
      Alcotest.(check bool) "reject kind" true (rj.Rec.kind = Rec.Reject);
      Alcotest.(check int) "reject was_running" 1 rj.Rec.flag;
      Alcotest.(check int) "reject rejected-so-far" 2 rj.Rec.aux;
      Alcotest.(check (float 0.)) "reject remaining" 0.75 rj.Rec.value;
      Alcotest.(check (float 0.)) "reject budget" 6.5 rj.Rec.budget;
      Alcotest.(check int) "restart seq" 3 rs.Rec.seq;
      Alcotest.(check bool) "restart kind" true (rs.Rec.kind = Rec.Restart);
      Alcotest.(check (float 0.)) "restart wasted" 1.25 rs.Rec.value;
      Alcotest.(check bool) "complete kind" true (c.Rec.kind = Rec.Complete);
      Alcotest.(check (float 0.)) "complete flow" 4.5 c.Rec.value
  | es -> Alcotest.failf "expected 5 entries, got %d" (List.length es)

(* [reserve] does not zero float cells, so a kind that leaves score/budget
   unset can land in a slot whose previous occupant stored them; decode
   must mask those columns by kind rather than surface the stale payload. *)
let test_recorder_wrap_masks_stale_cells () =
  let rc = Rec.create ~capacity:2 () in
  let b = Rec.reserve_dispatch rc ~job:0 ~machine:0 ~cands:1 ~mask:1 in
  rc.Rec.floats.(b + Rec.o_time) <- 0.;
  rc.Rec.floats.(b + Rec.o_value) <- 1.;
  rc.Rec.floats.(b + Rec.o_score) <- 9.5;
  let b = Rec.reserve_reject rc ~job:1 ~machine:0 ~was_running:false ~rejected:1 in
  rc.Rec.floats.(b + Rec.o_time) <- 1.;
  rc.Rec.floats.(b + Rec.o_value) <- 2.;
  rc.Rec.floats.(b + Rec.o_budget) <- 7.5;
  (* Slot 0 (the dispatch, with its 9.5 score still in the cell) is now
     overwritten by a complete, which stores neither score nor budget. *)
  let b = Rec.reserve_complete rc ~job:0 ~machine:0 in
  rc.Rec.floats.(b + Rec.o_time) <- 2.;
  rc.Rec.floats.(b + Rec.o_value) <- 2.;
  Alcotest.(check int) "one entry lost" 1 (Rec.dropped rc);
  (match Rec.entries rc with
  | [ rj; c ] ->
      Alcotest.(check int) "reject kept seq" 1 rj.Rec.seq;
      Alcotest.(check (float 0.)) "reject budget intact" 7.5 rj.Rec.budget;
      Alcotest.(check int) "complete seq" 2 c.Rec.seq;
      Alcotest.(check (float 0.)) "stale score masked" 0. c.Rec.score;
      Alcotest.(check (float 0.)) "stale budget masked" 0. c.Rec.budget
  | es -> Alcotest.failf "expected 2 entries, got %d" (List.length es));
  (* A reject overwriting the other slot keeps its own budget. *)
  let b = Rec.reserve_reject rc ~job:2 ~machine:0 ~was_running:true ~rejected:2 in
  rc.Rec.floats.(b + Rec.o_time) <- 3.;
  rc.Rec.floats.(b + Rec.o_value) <- 0.5;
  rc.Rec.floats.(b + Rec.o_budget) <- 8.25;
  match Rec.entries ~last:1 rc with
  | [ rj ] -> Alcotest.(check (float 0.)) "fresh budget read back" 8.25 rj.Rec.budget
  | es -> Alcotest.failf "expected 1 entry, got %d" (List.length es)

let test_recorder_entries_last () =
  let rc = Rec.create ~capacity:4 () in
  for k = 0 to 5 do
    let b = Rec.reserve_complete rc ~job:k ~machine:0 in
    rc.Rec.floats.(b + Rec.o_time) <- float_of_int k;
    rc.Rec.floats.(b + Rec.o_value) <- 0.
  done;
  let jobs es = List.map (fun e -> e.Rec.job) es in
  Alcotest.(check (list int)) "all retained" [ 2; 3; 4; 5 ] (jobs (Rec.entries rc));
  Alcotest.(check (list int)) "last 2" [ 4; 5 ] (jobs (Rec.entries ~last:2 rc));
  Alcotest.(check (list int)) "last 0" [] (jobs (Rec.entries ~last:0 rc));
  Alcotest.(check (list int)) "last negative" [] (jobs (Rec.entries ~last:(-3) rc));
  Alcotest.(check (list int)) "last beyond length" [ 2; 3; 4; 5 ]
    (jobs (Rec.entries ~last:100 rc));
  Alcotest.(check (list int)) "seq absolute" [ 4; 5 ]
    (List.map (fun e -> e.Rec.seq) (Rec.entries ~last:2 rc))

(* The default capacity must stay a power of two, or every production
   recorder silently falls off the division-free append fast path. *)
let test_recorder_default_capacity () =
  let c = Rec.default_capacity in
  Alcotest.(check int) "documented value" 65536 c;
  Alcotest.(check int) "power of two" 0 (c land (c - 1))

(* --- rejsched.trace/2 NDJSON golden (satellite: schema round-trip) ----- *)

let five_kinds_recorder () =
  let rc = Rec.create ~capacity:8 () in
  let b = Rec.reserve_dispatch rc ~job:0 ~machine:1 ~cands:2 ~mask:3 in
  rc.Rec.floats.(b + Rec.o_time) <- 0.5;
  rc.Rec.floats.(b + Rec.o_value) <- 2.25;
  rc.Rec.floats.(b + Rec.o_score) <- 3.75;
  let b = Rec.reserve_start rc ~job:0 ~machine:1 in
  rc.Rec.floats.(b + Rec.o_time) <- 0.5;
  rc.Rec.floats.(b + Rec.o_value) <- 1.;
  rc.Rec.floats.(b + Rec.o_score) <- 1.75;
  let b = Rec.reserve_reject rc ~job:0 ~machine:1 ~was_running:true ~rejected:1 in
  rc.Rec.floats.(b + Rec.o_time) <- 2.25;
  rc.Rec.floats.(b + Rec.o_value) <- 0.75;
  rc.Rec.floats.(b + Rec.o_budget) <- 1.5;
  let b = Rec.reserve_restart rc ~job:2 ~machine:0 in
  rc.Rec.floats.(b + Rec.o_time) <- 3.;
  rc.Rec.floats.(b + Rec.o_value) <- 1.5;
  let b = Rec.reserve_complete rc ~job:2 ~machine:0 in
  rc.Rec.floats.(b + Rec.o_time) <- 4.;
  rc.Rec.floats.(b + Rec.o_value) <- 2.5;
  rc

let test_recorder_ndjson_golden () =
  let expected =
    "{\"schema\":\"rejsched.trace/2\",\"seq\":0,\"time\":0.5,\"event\":\"dispatch\",\"job\":0,\"machine\":1,\"cands\":2,\"mask\":3,\"pending_work\":2.25,\"score\":3.75}\n\
     {\"schema\":\"rejsched.trace/2\",\"seq\":1,\"time\":0.5,\"event\":\"start\",\"job\":0,\"machine\":1,\"speed\":1,\"size\":1.75}\n\
     {\"schema\":\"rejsched.trace/2\",\"seq\":2,\"time\":2.25,\"event\":\"reject\",\"job\":0,\"machine\":1,\"was_running\":true,\"remaining\":0.75,\"rejected_total\":1,\"rejected_weight\":1.5}\n\
     {\"schema\":\"rejsched.trace/2\",\"seq\":3,\"time\":3,\"event\":\"restart\",\"job\":2,\"machine\":0,\"wasted\":1.5}\n\
     {\"schema\":\"rejsched.trace/2\",\"seq\":4,\"time\":4,\"event\":\"complete\",\"job\":2,\"machine\":0,\"flow\":2.5}\n"
  in
  Alcotest.(check string) "ndjson" expected (TE.recorder_to_ndjson (five_kinds_recorder ()))

(* Version-compatibility golden: a /2 line carries every /1 field, same
   names, same relative order — strip the /1 schema tag and the payload
   must appear verbatim inside the corresponding /2 line.  A consumer
   reading /1 fields keeps working on /2 records. *)
let test_v1_fields_embedded_in_v2 () =
  let t = Sched_sim.Trace.create () in
  Sched_sim.Trace.record t 0.5 (Sched_sim.Trace.Dispatch { job = 0; machine = 1 });
  Sched_sim.Trace.record t 0.5 (Sched_sim.Trace.Start { job = 0; machine = 1; speed = 1. });
  Sched_sim.Trace.record t 2.25
    (Sched_sim.Trace.Reject { job = 0; machine = 1; was_running = true; remaining = 0.75 });
  Sched_sim.Trace.record t 3. (Sched_sim.Trace.Restart { job = 2; machine = 0; wasted = 1.5 });
  Sched_sim.Trace.record t 4. (Sched_sim.Trace.Complete { job = 2; machine = 0 });
  let v1_lines = String.split_on_char '\n' (String.trim (TE.to_ndjson t)) in
  let v2_lines = TE.recorder_lines (five_kinds_recorder ()) in
  Alcotest.(check int) "same event count" (List.length v1_lines) (List.length v2_lines);
  List.iter2
    (fun v1 v2 ->
      let prefix = Printf.sprintf "{\"schema\":\"%s\"," TE.schema in
      Alcotest.(check bool) "v1 line shape" true (String.length v1 > String.length prefix + 1);
      let payload =
        String.sub v1 (String.length prefix) (String.length v1 - String.length prefix - 1)
      in
      if not (Test_util.contains v2 payload) then
        Alcotest.failf "/1 payload not embedded in /2 line:\n  /1: %s\n  /2: %s" payload v2)
    v1_lines v2_lines

let test_schema_tags_round_trip () =
  Alcotest.(check string) "v1 tag" "rejsched.trace/1" TE.schema;
  Alcotest.(check string) "v2 tag" "rejsched.trace/2" TE.schema_v2;
  let rc = five_kinds_recorder () in
  List.iter
    (fun line ->
      match TE.schema_of_line line with
      | Some s -> Alcotest.(check string) "every /2 line tagged" TE.schema_v2 s
      | None -> Alcotest.failf "line lost its schema tag: %s" line)
    (TE.recorder_lines rc);
  let t = Sched_sim.Trace.create () in
  Sched_sim.Trace.record t 1. (Sched_sim.Trace.Dispatch { job = 0; machine = 0 });
  Alcotest.(check (option string)) "/1 line tagged" (Some TE.schema)
    (TE.schema_of_line (TE.entry_line (List.hd (Sched_sim.Trace.events t))));
  Alcotest.(check (option string)) "untagged json" None (TE.schema_of_line "{\"a\":1}");
  Alcotest.(check (option string)) "not json" None (TE.schema_of_line "plain text");
  Alcotest.(check (option string)) "empty" None (TE.schema_of_line "");
  Alcotest.(check (option string)) "unterminated tag" None
    (TE.schema_of_line "{\"schema\":\"rejsched.trace/2")

(* Non-finite payloads (a NaN score from a degenerate instance must not
   produce unparseable NDJSON): the exporter renders them as quoted
   sentinel tokens, never bare [nan]. *)
let test_non_finite_payloads () =
  let rc = Rec.create ~capacity:4 () in
  let b = Rec.reserve_start rc ~job:0 ~machine:0 in
  rc.Rec.floats.(b + Rec.o_time) <- Float.nan;
  rc.Rec.floats.(b + Rec.o_value) <- Float.infinity;
  rc.Rec.floats.(b + Rec.o_score) <- Float.neg_infinity;
  let line = TE.recorder_entry_line (List.hd (Rec.entries rc)) in
  Alcotest.(check string) "sentinel tokens"
    "{\"schema\":\"rejsched.trace/2\",\"seq\":0,\"time\":\"NaN\",\"event\":\"start\",\"job\":0,\"machine\":0,\"speed\":\"Infinity\",\"size\":\"-Infinity\"}"
    line;
  Alcotest.(check bool) "no bare nan" false (Test_util.contains line ":nan")

(* --- Chrome trace_event export ---------------------------------------- *)

let test_chrome_export_validates () =
  let inst = Test_util.random_instance ~seed:3 ~n:40 ~m:3 () in
  let rc = Rec.create ~capacity:1024 () in
  let entry = match P.find "flow-reject" with Some e -> e | None -> Alcotest.fail "registry" in
  ignore (entry.P.run_impl ~recorder:rc ~impl:Sched_sim.Driver.Flat ~check:false inst);
  Alcotest.(check bool) "events recorded" true (Rec.total rc > 0);
  let doc = Sched_sim.Perfetto.to_chrome ~machines:(Instance.m inst) rc in
  (match Sched_sim.Perfetto.validate doc with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "chrome export rejected by validator: %s" msg);
  Alcotest.(check bool) "traceEvents array" true (Test_util.contains doc "\"traceEvents\"");
  Alcotest.(check bool) "thread-name metadata" true
    (Test_util.contains doc "\"thread_name\"");
  Alcotest.(check bool) "complete slices" true (Test_util.contains doc "\"ph\":\"X\"")

let test_chrome_validate_rejects () =
  let bad doc =
    match Sched_sim.Perfetto.validate doc with
    | Ok () -> Alcotest.failf "validator accepted malformed document: %s" doc
    | Error _ -> ()
  in
  bad "not json";
  bad "{}";
  bad "{\"traceEvents\": 3}";
  bad "{\"traceEvents\": [{\"ph\": 5}]}";
  bad "{\"traceEvents\": [{\"ph\": \"X\", \"name\": \"span\", \"pid\": 0, \"tid\": 0, \"ts\": 1}]}"

(* --- Provenance reconciles with the driver ----------------------------- *)

let count kind es = List.length (List.filter (fun e -> e.Rec.kind = kind) es)

(* greedy-spt never rejects: every job dispatches once, starts once,
   completes once, and each dispatch's provenance is internally
   consistent (chosen machine inside the mask, cands counts its bits). *)
let test_run_reconciles_no_rejection () =
  let inst = Test_util.random_instance ~seed:11 ~n:60 ~m:3 () in
  let n = Instance.n inst in
  let entry = match P.find "greedy-spt" with Some e -> e | None -> Alcotest.fail "registry" in
  List.iter
    (fun impl ->
      let rc = Rec.create ~capacity:1024 () in
      ignore (entry.P.run_impl ~recorder:rc ~impl ~check:true inst);
      let es = Rec.entries rc in
      Alcotest.(check int) "dispatches = n" n (count Rec.Dispatch es);
      Alcotest.(check int) "starts = n" n (count Rec.Start es);
      Alcotest.(check int) "completes = n" n (count Rec.Complete es);
      Alcotest.(check int) "no rejects" 0 (count Rec.Reject es);
      Alcotest.(check int) "no restarts" 0 (count Rec.Restart es);
      List.iter
        (fun e ->
          match e.Rec.kind with
          | Rec.Dispatch ->
              Alcotest.(check bool) "chosen machine eligible" true
                (e.Rec.aux land (1 lsl e.Rec.machine) <> 0);
              let rec bits x acc = if x = 0 then acc else bits (x land (x - 1)) (acc + 1) in
              Alcotest.(check int) "cands = popcount mask" (bits e.Rec.aux 0) e.Rec.flag;
              Alcotest.(check bool) "score >= pending work" true (e.Rec.score >= e.Rec.value)
          | Rec.Start -> Alcotest.(check bool) "positive rate" true (e.Rec.value > 0.)
          | Rec.Complete -> Alcotest.(check bool) "non-negative flow" true (e.Rec.value >= 0.)
          | _ -> ())
        es)
    [ Sched_sim.Driver.Boxed; Sched_sim.Driver.Flat ]

(* flow-reject on the restricted corpus case rejects for real: the budget
   columns of the last reject entry must equal the run's final rejection
   metrics bit-for-bit (both use the post-accounting convention), and the
   rejected-so-far counter must step by one per reject. *)
let test_reject_budget_matches_metrics () =
  let case =
    match
      List.find_opt
        (fun c -> c.Sched_fuzz.Corpus.name = "restricted-flow-reject")
        (Sched_fuzz.Corpus.seeds ())
    with
    | Some c -> c
    | None -> Alcotest.fail "restricted-flow-reject seed case missing"
  in
  let entry = match P.find case.Sched_fuzz.Corpus.policy with
    | Some e -> e
    | None -> Alcotest.fail "case policy not registered"
  in
  let rc = Rec.create ~capacity:4096 () in
  let _, live =
    entry.P.run_impl ~recorder:rc ~impl:Sched_sim.Driver.Flat ~check:true
      case.Sched_fuzz.Corpus.instance
  in
  let rejects = List.filter (fun e -> e.Rec.kind = Rec.Reject) (Rec.entries rc) in
  Alcotest.(check bool) "case rejects" true (rejects <> []);
  Alcotest.(check int) "reject entries = metric count"
    live.Sched_sim.Driver.rejection.Metrics.count (List.length rejects);
  List.iteri
    (fun i e -> Alcotest.(check int) "rejected-so-far steps by one" (i + 1) e.Rec.aux)
    rejects;
  let last = List.nth rejects (List.length rejects - 1) in
  Alcotest.(check int) "final counter" live.Sched_sim.Driver.rejection.Metrics.count last.Rec.aux;
  if not (Float.equal last.Rec.budget live.Sched_sim.Driver.rejection.Metrics.weight) then
    Alcotest.failf "final budget %.17g <> rejection weight %.17g" last.Rec.budget
      live.Sched_sim.Driver.rejection.Metrics.weight

let suite =
  [
    Alcotest.test_case "ring: create validation" `Quick test_ring_create_validation;
    Alcotest.test_case "ring: wrap and sliding window" `Quick test_ring_wrap;
    Alcotest.test_case "ring: slot sequence (pow2 and generic)" `Quick test_ring_slot_sequence;
    Alcotest.test_case "recorder: reserve/decode round-trip" `Quick test_recorder_round_trip;
    Alcotest.test_case "recorder: wrap masks stale cells" `Quick
      test_recorder_wrap_masks_stale_cells;
    Alcotest.test_case "recorder: entries ?last" `Quick test_recorder_entries_last;
    Alcotest.test_case "recorder: default capacity pow2" `Quick test_recorder_default_capacity;
    Alcotest.test_case "trace/2 ndjson golden" `Quick test_recorder_ndjson_golden;
    Alcotest.test_case "trace/1 fields embedded in trace/2" `Quick test_v1_fields_embedded_in_v2;
    Alcotest.test_case "schema tags round-trip" `Quick test_schema_tags_round_trip;
    Alcotest.test_case "non-finite payloads export as tokens" `Quick test_non_finite_payloads;
    Alcotest.test_case "chrome export validates" `Quick test_chrome_export_validates;
    Alcotest.test_case "chrome validator rejects malformed" `Quick test_chrome_validate_rejects;
    Alcotest.test_case "run reconciles (no rejection)" `Quick test_run_reconciles_no_rejection;
    Alcotest.test_case "reject budget matches metrics" `Quick test_reject_budget_matches_metrics;
  ]
