open Sched_model
module FR = Rejection.Flow_reject

let run ?(eps = 0.25) ?(rule1 = true) ?(rule2 = true) ?(dispatch = FR.Dual_lambda) inst =
  let cfg = FR.config ~eps ~rule1 ~rule2 ~dispatch () in
  let s, st = FR.run cfg inst in
  Schedule.assert_valid ~check_deadlines:false s;
  (s, st)

let test_spt_service_order () =
  (* All at time 0 on one machine; rules disabled to observe pure service
     order.  The first arrival grabs the idle machine, so test the order of
     the remaining two; use a long first job to keep them queued.  Here the
     first job IS the shortest, so the full SPT order is observable. *)
  let inst = Test_util.instance [ (0., [| 5. |]); (0., [| 1. |]); (0., [| 3. |]) ] in
  let s, _ = run ~rule1:false ~rule2:false inst in
  let finish id =
    match Schedule.outcome s id with
    | Outcome.Completed c -> c.Outcome.finish
    | Outcome.Rejected _ -> Float.nan
  in
  (* j0 (first arrival) grabs the machine: [0,5); then SPT serves j1 (1)
     before j2 (3). *)
  Alcotest.(check (float 1e-9)) "first arrival runs" 5. (finish 0);
  Alcotest.(check (float 1e-9)) "shortest queued next" 6. (finish 1);
  Alcotest.(check (float 1e-9)) "longest queued last" 9. (finish 2)

let test_rule1_threshold () =
  (* eps = 0.5 -> rule1 threshold 2: the running job is rejected at the
     second arrival during its execution.  Disable rule2 to isolate. *)
  let inst =
    Test_util.instance
      [ (0., [| 100. |]); (1., [| 1. |]); (2., [| 1. |]); (3., [| 1. |]) ]
  in
  let s, st = run ~eps:0.5 ~rule2:false inst in
  Alcotest.(check int) "one rule-1 rejection" 1 (FR.rule1_rejections st);
  (match Schedule.outcome s 0 with
  | Outcome.Rejected r ->
      Alcotest.(check (float 1e-9)) "rejected at second arrival" 2. r.Outcome.time;
      Alcotest.(check bool) "mid-run" true r.Outcome.was_running
  | Outcome.Completed _ -> Alcotest.fail "long job should be rejected by rule 1");
  (* The freed machine then serves the short jobs promptly. *)
  match Schedule.outcome s 1 with
  | Outcome.Completed c -> Alcotest.(check (float 1e-9)) "short job served" 3. c.Outcome.finish
  | Outcome.Rejected _ -> Alcotest.fail "short job should complete"

let test_rule1_counter_resets_per_execution () =
  (* With eps = 0.5 (threshold 2), one arrival during each of two separate
     executions must NOT trigger a rejection. *)
  let inst =
    Test_util.instance [ (0., [| 2. |]); (1., [| 2. |]); (3., [| 2. |]) ]
  in
  let s, st = run ~eps:0.5 ~rule2:false inst in
  Alcotest.(check int) "no rule-1 rejections" 0 (FR.rule1_rejections st);
  Array.iter
    (fun (j : Job.t) ->
      Alcotest.(check bool) (Printf.sprintf "job %d completed" j.Job.id) true
        (Outcome.is_completed (Schedule.outcome s j.Job.id)))
    (Instance.jobs_by_release inst)

let test_rule2_rejects_largest () =
  (* eps = 0.5 -> rule2 threshold 3: at the third dispatch the largest
     pending job is rejected.  Disable rule1 to isolate.  Machine runs job
     0 (released first, very long so nothing completes meanwhile). *)
  let inst =
    Test_util.instance
      [ (0., [| 50. |]); (1., [| 9. |]); (2., [| 4. |]) ]
  in
  let s, st = run ~eps:0.5 ~rule1:false inst in
  Alcotest.(check int) "one rule-2 rejection" 1 (FR.rule2_rejections st);
  (* Pending at third dispatch: jobs 1 (9) and 2 (4); largest pending is 1.
     The running job 0 is exempt from rule 2. *)
  (match Schedule.outcome s 1 with
  | Outcome.Rejected r ->
      Alcotest.(check (float 1e-9)) "rejected at third arrival" 2. r.Outcome.time;
      Alcotest.(check bool) "not mid-run" false r.Outcome.was_running
  | Outcome.Completed _ -> Alcotest.fail "job 1 should be rejected by rule 2");
  Alcotest.(check bool) "running job survives rule 2" true
    (Outcome.is_completed (Schedule.outcome s 0))

let test_rule2_can_reject_newcomer () =
  (* The just-arrived job is the largest pending: it must be the victim. *)
  let inst =
    Test_util.instance [ (0., [| 50. |]); (1., [| 2. |]); (2., [| 70. |]) ]
  in
  let s, st = run ~eps:0.5 ~rule1:false inst in
  Alcotest.(check int) "one rule-2 rejection" 1 (FR.rule2_rejections st);
  match Schedule.outcome s 2 with
  | Outcome.Rejected _ -> ()
  | Outcome.Completed _ -> Alcotest.fail "the newcomer (largest) should be rejected"

let test_dispatch_prefers_fast_machine () =
  (* Unrelated sizes: job prefers the machine where it is small. *)
  let inst = Test_util.instance ~machines:2 [ (0., [| 10.; 1. |]) ] in
  let s, _ = run inst in
  match Schedule.outcome s 0 with
  | Outcome.Completed c -> Alcotest.(check int) "machine 1" 1 c.Outcome.machine
  | Outcome.Rejected _ -> Alcotest.fail "should complete"

let test_dispatch_avoids_loaded_machine () =
  (* Machine 0 is buried under pending work; an equal-size job goes to 1. *)
  let inst =
    Test_util.instance ~machines:2
      [ (0., [| 5.; 1000. |]); (0., [| 5.; 1000. |]); (0., [| 5.; 1000. |]); (0.5, [| 6.; 6. |]) ]
  in
  let s, _ = run ~rule1:false ~rule2:false inst in
  match Schedule.outcome s 3 with
  | Outcome.Completed c -> Alcotest.(check int) "goes to idle machine" 1 c.Outcome.machine
  | Outcome.Rejected _ -> Alcotest.fail "should complete"

let test_lambda_values_positive () =
  let gen = Sched_workload.Suite.flow_uniform ~n:50 ~m:2 in
  let inst = Sched_workload.Gen.instance gen ~seed:1 in
  let _, st = run inst in
  Array.iter
    (fun l -> Alcotest.(check bool) "lambda positive" true (l > 0.))
    (FR.lambdas st)

let test_lambda_formula_single_job () =
  (* First job on an empty machine: lambda_ij = p/eps + p, and
     lambda_j = eps/(1+eps) * that. *)
  let inst = Test_util.instance [ (0., [| 4. |]) ] in
  let eps = 0.25 in
  let _, st = run ~eps inst in
  let expected = eps /. (1. +. eps) *. ((4. /. eps) +. 4.) in
  Alcotest.(check (float 1e-9)) "lambda formula" expected (FR.lambdas st).(0)

let test_rejection_budget_property () =
  QCheck.Test.make ~name:"rejections <= 2 eps n (Theorem 1 budget)" ~count:40
    QCheck.(triple (int_bound 1000) (int_range 1 3) (float_range 0.15 0.9))
    (fun (seed, m, eps) ->
      let gen = Sched_workload.Suite.flow_pareto ~n:80 ~m in
      let inst = Sched_workload.Gen.instance gen ~seed in
      let s, _ = run ~eps inst in
      let r = Metrics.rejection s in
      float_of_int r.Metrics.count <= (2. *. eps *. 80.) +. 1e-9)
  |> QCheck_alcotest.to_alcotest

let test_schedules_valid_property () =
  QCheck.Test.make ~name:"flow-reject schedules always validate" ~count:40
    QCheck.(pair (int_bound 1000) (float_range 0.1 0.8))
    (fun (seed, eps) ->
      let gen = Sched_workload.Suite.flow_bimodal ~n:60 ~m:3 in
      let inst = Sched_workload.Gen.instance gen ~seed in
      let s, _ = run ~eps inst in
      match Schedule.validate ~check_deadlines:false s with Ok () -> true | Error _ -> false)
  |> QCheck_alcotest.to_alcotest

let test_competitive_vs_opt_property () =
  QCheck.Test.make ~name:"ratio vs brute OPT within Theorem 1 bound" ~count:15
    QCheck.(pair (int_bound 1000) (int_range 1 2))
    (fun (seed, m) ->
      let eps = 0.25 in
      let inst = Sched_workload.Suite.tiny ~seed ~n:6 ~m in
      let s, _ = run ~eps inst in
      let opt = Option.get (Sched_baselines.Brute_force.optimal_flow inst) in
      Test_util.total_flow s <= (Rejection.Bounds.flow_competitive ~eps *. opt) +. 1e-6)
  |> QCheck_alcotest.to_alcotest

let test_no_rejection_variant () =
  let gen = Sched_workload.Suite.flow_uniform ~n:40 ~m:2 in
  let inst = Sched_workload.Gen.instance gen ~seed:9 in
  let s, st = run ~rule1:false ~rule2:false inst in
  Alcotest.(check int) "no rejections" 0 (Metrics.rejection s).Metrics.count;
  Alcotest.(check int) "counters zero" 0 (FR.rule1_rejections st + FR.rule2_rejections st)

let test_greedy_dispatch_variant () =
  let gen = Sched_workload.Suite.flow_uniform ~n:40 ~m:2 in
  let inst = Sched_workload.Gen.instance gen ~seed:10 in
  let s, _ = run ~dispatch:FR.Greedy_load inst in
  Alcotest.(check bool) "valid" true
    (match Schedule.validate ~check_deadlines:false s with Ok () -> true | Error _ -> false)

let test_restricted_eligibility_respected () =
  let gen = Sched_workload.Suite.flow_restricted ~n:60 ~m:4 in
  let inst = Sched_workload.Gen.instance gen ~seed:3 in
  let s, _ = run inst in
  Array.iter
    (fun (j : Job.t) ->
      match Schedule.outcome s j.Job.id with
      | Outcome.Completed c ->
          Alcotest.(check bool) "eligible machine" true (Job.eligible j c.Outcome.machine)
      | Outcome.Rejected _ -> ())
    (Instance.jobs_by_release inst)

let test_config_validation () =
  Alcotest.(check bool) "eps 0 rejected" true
    (try
       ignore (FR.config ~eps:0. ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "eps 1 rejected" true
    (try
       ignore (FR.config ~eps:1. ());
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "SPT service order" `Quick test_spt_service_order;
    Alcotest.test_case "rule 1 threshold" `Quick test_rule1_threshold;
    Alcotest.test_case "rule 1 resets per execution" `Quick test_rule1_counter_resets_per_execution;
    Alcotest.test_case "rule 2 rejects largest pending" `Quick test_rule2_rejects_largest;
    Alcotest.test_case "rule 2 can reject newcomer" `Quick test_rule2_can_reject_newcomer;
    Alcotest.test_case "dispatch prefers fast machine" `Quick test_dispatch_prefers_fast_machine;
    Alcotest.test_case "dispatch avoids loaded machine" `Quick test_dispatch_avoids_loaded_machine;
    Alcotest.test_case "lambdas positive" `Quick test_lambda_values_positive;
    Alcotest.test_case "lambda formula (single job)" `Quick test_lambda_formula_single_job;
    test_rejection_budget_property ();
    test_schedules_valid_property ();
    test_competitive_vs_opt_property ();
    Alcotest.test_case "no-rejection variant" `Quick test_no_rejection_variant;
    Alcotest.test_case "greedy dispatch variant" `Quick test_greedy_dispatch_variant;
    Alcotest.test_case "restricted eligibility respected" `Quick test_restricted_eligibility_respected;
    Alcotest.test_case "config validation" `Quick test_config_validation;
  ]
