open Sched_energy

let job release deadline volume = { Yds.release; deadline; volume }

let test_single_job_matches_yds () =
  let jobs = [ job 0. 4. 2. ] in
  Alcotest.(check (float 1e-9)) "oa = yds for one job"
    (Yds.optimal_energy ~alpha:3. jobs)
    (Oa.energy ~alpha:3. jobs)

let test_all_released_at_zero_matches_yds () =
  (* With no future arrivals OA executes the optimal plan it computes at
     time 0, so OA = YDS. *)
  let jobs = [ job 0. 4. 2.; job 0. 2. 1.; job 0. 8. 1. ] in
  Alcotest.(check (float 1e-6)) "oa = yds offline"
    (Yds.optimal_energy ~alpha:2. jobs)
    (Oa.energy ~alpha:2. jobs)

let test_two_disjoint () =
  let jobs = [ job 0. 2. 2.; job 2. 4. 2. ] in
  (* Unit speed throughout. *)
  Alcotest.(check (float 1e-9)) "disjoint" 4. (Oa.energy ~alpha:2. jobs)

let test_oa_above_yds_property () =
  QCheck.Test.make ~name:"OA >= YDS (online pays)" ~count:60
    QCheck.(
      list_of_size (Gen.int_range 1 8)
        (triple (float_range 0. 10.) (float_range 0.5 5.) (float_range 0.5 5.)))
    (fun raw ->
      let jobs = List.map (fun (r, span, v) -> job r (r +. span) v) raw in
      Oa.energy ~alpha:3. jobs >= Yds.optimal_energy ~alpha:3. jobs -. 1e-6)
  |> QCheck_alcotest.to_alcotest

let test_oa_within_alpha_alpha_property () =
  QCheck.Test.make ~name:"OA <= alpha^alpha * YDS (BKP bound)" ~count:60
    QCheck.(
      list_of_size (Gen.int_range 1 8)
        (triple (float_range 0. 10.) (float_range 0.5 5.) (float_range 0.5 5.)))
    (fun raw ->
      let alpha = 2.5 in
      let jobs = List.map (fun (r, span, v) -> job r (r +. span) v) raw in
      Oa.energy ~alpha jobs <= ((alpha ** alpha) *. Yds.optimal_energy ~alpha jobs) +. 1e-6)
  |> QCheck_alcotest.to_alcotest

let test_late_arrival_costs_more () =
  (* Same work, but revealed late with a tight window: OA must pay more
     than the offline optimum. *)
  let offline = [ job 0. 4. 2.; job 0. 4. 2. ] in
  let online = [ job 0. 4. 2.; job 3. 4. 2. ] in
  let yds_online = Yds.optimal_energy ~alpha:2. online in
  let oa_online = Oa.energy ~alpha:2. online in
  Alcotest.(check bool) "tight late window costs" true (oa_online >= yds_online -. 1e-9);
  Alcotest.(check bool) "harder than relaxed instance" true
    (oa_online > Oa.energy ~alpha:2. offline)

let test_validation () =
  Alcotest.(check bool) "bad volume" true
    (try
       ignore (Oa.energy ~alpha:2. [ job 0. 1. 0. ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad span" true
    (try
       ignore (Oa.energy ~alpha:2. [ job 2. 1. 1. ]);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "single job = yds" `Quick test_single_job_matches_yds;
    Alcotest.test_case "offline case = yds" `Quick test_all_released_at_zero_matches_yds;
    Alcotest.test_case "disjoint jobs" `Quick test_two_disjoint;
    test_oa_above_yds_property ();
    test_oa_within_alpha_alpha_property ();
    Alcotest.test_case "late arrival costs more" `Quick test_late_arrival_costs_more;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
