(* Tests for rejlint, the static determinism linter (lib/analysis/).

   The per-rule fixtures live in test/lint_fixtures/ — one violating, one
   clean and one suppressed file per rule family — and are linted here
   under a forced scope, exactly as `rejlint --scope <s>` would.  A final
   meta-test runs the full driver over the repository itself and demands
   a clean bill of health: the tree must satisfy its own linter. *)

module RL = Rejlint_lib

let scope name =
  match RL.Scope.of_string name with
  | Some s -> s
  | None -> Alcotest.failf "unknown scope %S" name

(* dune runtest runs with cwd _build/default/test; a direct
   `dune exec test/test_main.exe` from the repo root must find the same
   fixture tree (with its built .cmt files) inside _build. *)
let fixture_base =
  if Sys.file_exists "lint_fixtures" then "lint_fixtures"
  else
    Filename.concat
      (Filename.concat "_build" "default")
      (Filename.concat "test" "lint_fixtures")

let fixture name = Filename.concat fixture_base name

let lint ?(scope_name = "lib") name =
  RL.Lint.lint_file ~check_mli:false ~scope:(scope scope_name) (fixture name)

let rules findings = List.map (fun f -> f.RL.Finding.rule) findings
let lines findings = List.map (fun f -> f.RL.Finding.line) findings

let check_all_rule rule findings =
  List.iter
    (fun f ->
      Alcotest.(check string)
        "rule" (RL.Rule.to_string rule)
        (RL.Rule.to_string f.RL.Finding.rule))
    findings

(* --- per-rule fixtures ------------------------------------------------- *)

let test_nondet_bad () =
  let fs = lint "nondet_bad.ml" in
  Alcotest.(check int) "findings" 6 (List.length fs);
  check_all_rule RL.Rule.Nondet_source fs;
  Alcotest.(check (list int)) "lines" [ 4; 5; 6; 7; 8; 9 ] (lines fs)

let test_nondet_ok () =
  Alcotest.(check int) "clean" 0 (List.length (lint "nondet_ok.ml"))

let test_nondet_allow () =
  Alcotest.(check int) "suppressed" 0 (List.length (lint "nondet_allow.ml"))

let test_polycmp_bad () =
  let fs = lint "polycmp_bad.ml" in
  Alcotest.(check int) "findings" 6 (List.length fs);
  check_all_rule RL.Rule.Poly_compare fs

let test_polycmp_ok () =
  Alcotest.(check int) "clean" 0 (List.length (lint "polycmp_ok.ml"))

let test_polycmp_allow () =
  Alcotest.(check int) "suppressed" 0 (List.length (lint "polycmp_allow.ml"))

let test_polycmp_heap_bad () =
  let fs = lint "polycmp_heap_bad.ml" in
  Alcotest.(check int) "findings" 4 (List.length fs);
  check_all_rule RL.Rule.Poly_compare fs

let test_polycmp_heap_ok () =
  Alcotest.(check int) "clean" 0 (List.length (lint "polycmp_heap_ok.ml"))

let test_polycmp_heap_allow () =
  Alcotest.(check int) "suppressed" 0 (List.length (lint "polycmp_heap_allow.ml"))

let test_unstable_bad () =
  let fs = lint "unstable_bad.ml" in
  Alcotest.(check int) "findings" 1 (List.length fs);
  check_all_rule RL.Rule.Unstable_sort fs;
  Alcotest.(check (list int)) "line" [ 7 ] (lines fs)

let test_unstable_ok () =
  Alcotest.(check int) "clean" 0 (List.length (lint "unstable_ok.ml"))

let test_unstable_allow () =
  Alcotest.(check int) "suppressed" 0 (List.length (lint "unstable_allow.ml"))

let test_mutable_bad () =
  let fs = lint ~scope_name:"policy" "mutable_bad.ml" in
  Alcotest.(check int) "findings" 5 (List.length fs);
  check_all_rule RL.Rule.Global_mutable fs

let test_mutable_needs_policy_scope () =
  (* Plain lib/ scope tolerates toplevel state; only policy modules ban it. *)
  Alcotest.(check int) "lib scope" 0 (List.length (lint "mutable_bad.ml"))

let test_mutable_ok () =
  Alcotest.(check int) "clean" 0 (List.length (lint ~scope_name:"policy" "mutable_ok.ml"))

let test_mutable_allow () =
  Alcotest.(check int) "suppressed" 0
    (List.length (lint ~scope_name:"policy" "mutable_allow.ml"))

let test_io_bad () =
  let fs = lint "io_bad.ml" in
  Alcotest.(check int) "findings" 7 (List.length fs);
  check_all_rule RL.Rule.Stray_io fs;
  Alcotest.(check (list int)) "lines" [ 3; 4; 5; 6; 7; 8; 9 ] (lines fs)

let test_io_ok_in_bin () =
  (* The same I/O is fine in bin/ and in the display modules. *)
  Alcotest.(check int) "bin scope" 0
    (List.length (lint ~scope_name:"bin" "io_bad.ml"));
  Alcotest.(check int) "display scope" 0
    (List.length (lint ~scope_name:"display" "io_bad.ml"))

let test_io_ok () = Alcotest.(check int) "clean" 0 (List.length (lint "io_ok.ml"))

let test_io_allow () =
  Alcotest.(check int) "suppressed" 0 (List.length (lint "io_allow.ml"))

let test_wallclock_bad () =
  let fs = lint "wallclock_bad.ml" in
  Alcotest.(check int) "findings" 3 (List.length fs);
  check_all_rule RL.Rule.Wall_clock fs;
  Alcotest.(check (list int)) "lines" [ 4; 5; 6 ] (lines fs)

let test_wallclock_clock_scope () =
  (* The clock scope (lib/obs/clock.ml) is the one lib/ module allowed to
     read time directly — and the reads must not fall through to RJL001. *)
  Alcotest.(check int) "clock scope" 0
    (List.length (lint ~scope_name:"clock" "wallclock_bad.ml"))

let test_wallclock_ok () =
  Alcotest.(check int) "clean" 0 (List.length (lint "wallclock_ok.ml"))

let test_wallclock_allow () =
  Alcotest.(check int) "suppressed" 0 (List.length (lint "wallclock_allow.ml"))

let test_clock_module_classified () =
  (* Path classification must allowlist exactly lib/obs/clock.ml. *)
  Alcotest.(check bool) "clock.ml" true (RL.Scope.clock (RL.Scope.classify "lib/obs/clock.ml"));
  Alcotest.(check bool) "sibling" false (RL.Scope.clock (RL.Scope.classify "lib/obs/sink.ml"));
  Alcotest.(check bool) "driver" false (RL.Scope.clock (RL.Scope.classify "lib/sim/driver.ml"))

let test_concurrency_bad () =
  let fs = lint "concurrency_bad.ml" in
  Alcotest.(check int) "findings" 9 (List.length fs);
  check_all_rule RL.Rule.Raw_concurrency fs

let test_concurrency_pool_scope () =
  (* The pool scope (lib/stats/pool.ml) is the one lib/ module allowed to
     spawn domains and hold locks. *)
  Alcotest.(check int) "pool scope" 0
    (List.length (lint ~scope_name:"pool" "concurrency_bad.ml"))

let test_concurrency_ok () =
  (* Domain.recommended_domain_count and Domain.DLS must NOT fire: they
     neither create domains nor synchronize between them. *)
  Alcotest.(check int) "clean" 0 (List.length (lint "concurrency_ok.ml"))

let test_concurrency_allow () =
  Alcotest.(check int) "suppressed" 0 (List.length (lint "concurrency_allow.ml"))

let test_pool_module_classified () =
  (* Path classification must allowlist exactly lib/stats/pool.ml. *)
  Alcotest.(check bool) "pool.ml" true (RL.Scope.pool (RL.Scope.classify "lib/stats/pool.ml"));
  Alcotest.(check bool) "shim" false (RL.Scope.pool (RL.Scope.classify "lib/stats/parallel.ml"));
  Alcotest.(check bool) "driver" false (RL.Scope.pool (RL.Scope.classify "lib/sim/driver.ml"))

let test_mli_coverage () =
  (* RJL006 is a directory-walk property: scan the mli/ fixture tree. *)
  let buf = Buffer.create 256 in
  let code =
    RL.Driver.run ~out:(Buffer.add_string buf)
      [ "--scope"; "lib"; "--root"; fixture_base; "mli" ]
  in
  let out = Buffer.contents buf in
  Alcotest.(check int) "exit" 1 code;
  Alcotest.(check bool) "orphan flagged" true (Test_util.contains out "orphan.ml");
  Alcotest.(check bool) "rule named" true (Test_util.contains out "missing-mli");
  Alcotest.(check bool) "covered clean" false (Test_util.contains out "covered.ml:");
  Alcotest.(check bool) "tolerated clean" false (Test_util.contains out "tolerated.ml:")

(* --- inline sources: edge cases the fixtures do not cover -------------- *)

let lint_src ?(scope_name = "lib") src =
  RL.Lint.lint_source ~scope:(scope scope_name) ~file:"inline.ml" src

let test_stdlib_prefix_normalized () =
  (* Stdlib.compare is the same bare polymorphic compare. *)
  let fs = lint_src "let f xs = List.sort Stdlib.compare xs\n" in
  Alcotest.(check (list string)) "rules" [ "poly-compare" ]
    (List.map RL.Rule.to_string (rules fs))

let test_named_comparator_trusted () =
  (* A named comparator is audited at its definition, not at every call. *)
  Alcotest.(check int) "named" 0
    (List.length (lint_src "let f cmp a = Array.sort cmp a\n"))

let test_tuple_key_is_tie_break () =
  (* Comparing whole tuple keys is a total order; only the polymorphic
     compare itself is flagged, not the sort. *)
  let fs =
    lint_src
      "type r = { a : int; b : int }\n\
       let f (xs : r array) = Array.sort (fun x y -> compare (x.a, x.b) (y.a, y.b)) xs\n"
  in
  Alcotest.(check (list string)) "rules" [ "poly-compare" ]
    (List.map RL.Rule.to_string (rules fs))

let test_parse_error () =
  let fs = lint_src "let = (\n" in
  Alcotest.(check (list string)) "rules" [ "parse-error" ]
    (List.map RL.Rule.to_string (rules fs))

let test_scope_gates_nondet () =
  (* Nondeterminism sources are banned in lib/, tolerated in test/. *)
  let src = "let p () = Unix.getpid ()\n" in
  Alcotest.(check int) "lib" 1 (List.length (lint_src src));
  Alcotest.(check int) "test" 0 (List.length (lint_src ~scope_name:"test" src))

let test_wallclock_beats_nondet () =
  (* Unix.gettimeofday is both a Unix.* nondet source and a wall-clock
     read; the more specific RJL007 wins. *)
  let fs = lint_src "let t () = Unix.gettimeofday ()\n" in
  Alcotest.(check (list string)) "rules" [ "wall-clock" ]
    (List.map RL.Rule.to_string (rules fs))

let test_io_applied_std_channels () =
  (* fprintf/output_string reach the console only through a std channel
     argument; the channel decides the verdict. *)
  let bad =
    "let a oc = Printf.fprintf stderr \"x\"\n\
     let b () = Format.fprintf Format.std_formatter \"x\"\n\
     let c () = output_char stdout 'x'\n"
  in
  let fs = lint_src bad in
  Alcotest.(check int) "std channels fire" 3 (List.length fs);
  check_all_rule RL.Rule.Stray_io fs;
  Alcotest.(check int) "caller's channel clean" 0
    (List.length (lint_src "let a oc = Printf.fprintf oc \"x\"\nlet b oc = output_char oc 'x'\n"))

(* --- suppression semantics -------------------------------------------- *)

let test_suppress_scope_lines () =
  (* The marker is split so rejlint's own line scan doesn't read this
     literal as a suppression entry in this file. *)
  let src =
    "(* rejlint" ^ ": allow nondet-source *)\n\
                    let a () = Random.self_init ()\n\
                    let b () = Random.self_init ()\n"
  in
  let sup = RL.Suppress.scan src in
  Alcotest.(check bool) "line below" true
    (RL.Suppress.active sup ~line:2 RL.Rule.Nondet_source);
  Alcotest.(check bool) "two below" false
    (RL.Suppress.active sup ~line:3 RL.Rule.Nondet_source);
  Alcotest.(check bool) "other rule" false
    (RL.Suppress.active sup ~line:2 RL.Rule.Stray_io);
  (* End to end: only the first violation is silenced. *)
  Alcotest.(check (list int)) "lines" [ 3 ] (lines (lint_src src))

let test_suppress_code_synonym () =
  let src = "let a () = Random.self_init () (* rejlint" ^ ": allow RJL001 *)\n" in
  Alcotest.(check int) "code synonym" 0 (List.length (lint_src src))

let test_suppress_all () =
  let src = "let a () = Sys.time () (* rejlint" ^ ": allow all *)\n" in
  Alcotest.(check int) "all" 0 (List.length (lint_src src))

let test_suppress_multiple_findings_one_line () =
  (* One trailing comment naming two rules silences both findings the
     line produces. *)
  let src =
    "let a () = (Random.self_init (), Sys.time ()) (* rejlint"
    ^ ": allow RJL001 RJL007 *)\n"
  in
  Alcotest.(check int) "both silenced" 0 (List.length (lint_src src));
  (* Naming only one of the two leaves the other standing. *)
  let partial =
    "let a () = (Random.self_init (), Sys.time ()) (* rejlint" ^ ": allow RJL001 *)\n"
  in
  Alcotest.(check (list string)) "other stands" [ "wall-clock" ]
    (List.map RL.Rule.to_string (rules (lint_src partial)))

let test_suppress_last_line_no_newline () =
  (* A suppression on the final line of a file with no trailing newline
     must still be scanned (the flush-at-EOF path). *)
  let src = "let a () = Sys.time () (* rejlint" ^ ": allow RJL007 *)" in
  Alcotest.(check int) "last line" 0 (List.length (lint_src src))

let test_suppress_crlf_source () =
  (* CRLF line endings: the \r must not break marker or token parsing,
     and line numbers must still line up. *)
  let src =
    "(* rejlint" ^ ": allow nondet-source *)\r\nlet a () = Random.self_init ()\r\n"
  in
  Alcotest.(check int) "crlf suppressed" 0 (List.length (lint_src src));
  let trailing =
    "let a () = Random.self_init () (* rejlint" ^ ": allow RJL001 *)\r\nlet b () = Sys.time ()\r\n"
  in
  Alcotest.(check (list string)) "crlf line numbers" [ "wall-clock" ]
    (List.map RL.Rule.to_string (rules (lint_src trailing)))

(* --- stale suppressions (RJL009) --------------------------------------- *)

let mk_finding ?(rule = RL.Rule.Nondet_source) ?(severity = RL.Rule.Error)
    ?(file = "inline.ml") ?(line = 1) ?(col = 0) msg =
  RL.Finding.make ~rule ~severity ~file ~line ~col msg

let scan_one src = RL.Suppress.scan src

let test_stale_suppress_fires () =
  let t = scan_one ("let id x = x (* rejlint" ^ ": allow RJL001 *)\n") in
  match RL.Suppress.unused t ~typed_ran:false [] with
  | [ (1, msg) ] ->
      Alcotest.(check bool) "message names entry" true (Test_util.contains msg "allow RJL001")
  | _ -> Alcotest.fail "expected one stale entry"

let test_stale_suppress_used_entry_quiet () =
  let t = scan_one ("let a () = Random.self_init () (* rejlint" ^ ": allow RJL001 *)\n") in
  let fs = [ mk_finding ~line:1 "x" ] in
  Alcotest.(check int) "used entry" 0 (List.length (RL.Suppress.unused t ~typed_ran:false fs));
  (* The line-below form is also a use. *)
  let below = scan_one ("(* rejlint" ^ ": allow RJL001 *)\nlet a () = Random.self_init ()\n") in
  let fs = [ mk_finding ~line:2 "x" ] in
  Alcotest.(check int) "line below" 0 (List.length (RL.Suppress.unused below ~typed_ran:false fs))

let test_stale_suppress_tier_gating () =
  (* A typed-rule suppression cannot be judged by a syntactic-only run:
     the findings it might match were never computed. *)
  let t = scan_one ("let f x = x (* rejlint" ^ ": allow hot-alloc *)\n") in
  Alcotest.(check int) "typed rule gated" 0
    (List.length (RL.Suppress.unused t ~typed_ran:false []));
  Alcotest.(check int) "typed run judges it" 1
    (List.length (RL.Suppress.unused t ~typed_ran:true []));
  (* [allow all] spans both tiers, so only a full run can call it stale. *)
  let all = scan_one ("let f x = x (* rejlint" ^ ": allow all *)\n") in
  Alcotest.(check int) "all gated" 0 (List.length (RL.Suppress.unused all ~typed_ran:false []));
  Alcotest.(check int) "all judged" 1 (List.length (RL.Suppress.unused all ~typed_ran:true []))

let test_stale_suppress_driver_warns () =
  (* End to end: a stale entry surfaces as a warning finding — reported,
     but not an error exit. *)
  let buf = Buffer.create 256 in
  let code =
    RL.Driver.run ~out:(Buffer.add_string buf) [ "--scope"; "lib"; fixture "stale_allow.ml" ]
  in
  let out = Buffer.contents buf in
  Alcotest.(check int) "warning exit" 0 code;
  Alcotest.(check bool) "RJL009 reported" true (Test_util.contains out "RJL009");
  Alcotest.(check bool) "is a warning" true (Test_util.contains out "[warning]")

(* --- report ordering --------------------------------------------------- *)

let test_finding_order_total () =
  (* The report order is a pinned total order: file, line, column, rule
     (catalog position), severity (errors first), message. *)
  let f ?rule ?severity ?file ?line ?col msg = mk_finding ?rule ?severity ?file ?line ?col msg in
  let expected =
    [
      f ~file:"a.ml" ~line:2 ~col:0 "x";
      f ~file:"b.ml" ~line:1 ~col:0 "x";
      f ~file:"b.ml" ~line:1 ~col:4 ~rule:RL.Rule.Stray_io "x";
      f ~file:"b.ml" ~line:1 ~col:9 ~rule:RL.Rule.Poly_compare "x";
      f ~file:"b.ml" ~line:1 ~col:9 ~rule:RL.Rule.Stray_io ~severity:RL.Rule.Error "x";
      f ~file:"b.ml" ~line:1 ~col:9 ~rule:RL.Rule.Stray_io ~severity:RL.Rule.Warning "x";
      f ~file:"b.ml" ~line:1 ~col:9 ~rule:RL.Rule.Stale_suppress "a then";
      f ~file:"b.ml" ~line:1 ~col:9 ~rule:RL.Rule.Stale_suppress "b after";
      f ~file:"b.ml" ~line:3 ~col:0 "x";
    ]
  in
  (* A deterministic scramble (reverse + interleave) must sort back. *)
  let scrambled =
    let rec weave a b =
      match (a, b) with
      | [], r | r, [] -> r
      | x :: xs, y :: ys -> x :: y :: weave xs ys
    in
    let rev = List.rev expected in
    weave rev (List.rev rev)
  in
  let sorted = List.sort_uniq RL.Finding.order scrambled in
  let show fs = String.concat "\n" (List.map RL.Finding.to_human fs) in
  Alcotest.(check string) "golden order" (show expected) (show sorted)

(* --- rule catalog and report formats ----------------------------------- *)

let test_rule_roundtrip () =
  List.iter
    (fun id ->
      let name = RL.Rule.to_string id and code = RL.Rule.code id in
      Alcotest.(check bool) ("name " ^ name) true (RL.Rule.of_string name = Some id);
      Alcotest.(check bool) ("code " ^ code) true (RL.Rule.of_string code = Some id))
    RL.Rule.all;
  let codes = List.map RL.Rule.code RL.Rule.all in
  Alcotest.(check int) "codes unique"
    (List.length codes)
    (List.length (List.sort_uniq String.compare codes))

let test_human_format () =
  match lint "nondet_bad.ml" with
  | f :: _ ->
      let line = RL.Finding.to_human f in
      Alcotest.(check bool) "location" true
        (Test_util.contains line "nondet_bad.ml:4:");
      Alcotest.(check bool) "code" true (Test_util.contains line "RJL001")
  | [] -> Alcotest.fail "expected findings"

let test_driver_json () =
  let buf = Buffer.create 256 in
  let code =
    RL.Driver.run ~out:(Buffer.add_string buf)
      [ "--json"; "--scope"; "lib"; fixture "nondet_bad.ml" ]
  in
  let out = Buffer.contents buf in
  Alcotest.(check int) "exit" 1 code;
  Alcotest.(check bool) "version" true (Test_util.contains out "\"version\":1");
  Alcotest.(check bool) "rule" true
    (Test_util.contains out "\"rule\":\"nondet-source\"");
  Alcotest.(check bool) "line" true (Test_util.contains out "\"line\":4");
  Alcotest.(check bool) "errors" true (Test_util.contains out "\"errors\":6")

let test_driver_clean_exit () =
  let buf = Buffer.create 256 in
  let code =
    RL.Driver.run ~out:(Buffer.add_string buf)
      [ "--scope"; "lib"; fixture "io_ok.ml" ]
  in
  Alcotest.(check int) "exit" 0 code

let test_driver_usage_error () =
  let code = RL.Driver.run ~out:ignore [ "--scope"; "no-such-scope" ] in
  Alcotest.(check int) "exit" 2 code

(* --- the repository lints itself --------------------------------------- *)

let repo_root () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project")
       && Sys.is_directory (Filename.concat dir "lib")
    then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  up (Sys.getcwd ())

let test_repo_is_clean () =
  match repo_root () with
  | None -> Alcotest.fail "could not locate repository root from cwd"
  | Some root ->
      let buf = Buffer.create 1024 in
      let code = RL.Driver.run ~out:(Buffer.add_string buf) [ "--root"; root ] in
      if code <> 0 then
        Alcotest.failf "repository is not lint-clean:\n%s" (Buffer.contents buf)

let suite =
  [
    Alcotest.test_case "nondet: fixture fires" `Quick test_nondet_bad;
    Alcotest.test_case "nondet: clean fixture" `Quick test_nondet_ok;
    Alcotest.test_case "nondet: suppressed fixture" `Quick test_nondet_allow;
    Alcotest.test_case "polycmp: fixture fires" `Quick test_polycmp_bad;
    Alcotest.test_case "polycmp: clean fixture" `Quick test_polycmp_ok;
    Alcotest.test_case "polycmp: suppressed fixture" `Quick test_polycmp_allow;
    Alcotest.test_case "polycmp: heap comparator fires" `Quick test_polycmp_heap_bad;
    Alcotest.test_case "polycmp: clean heap comparator" `Quick test_polycmp_heap_ok;
    Alcotest.test_case "polycmp: suppressed heap comparator" `Quick test_polycmp_heap_allow;
    Alcotest.test_case "unstable: fixture fires" `Quick test_unstable_bad;
    Alcotest.test_case "unstable: clean fixture" `Quick test_unstable_ok;
    Alcotest.test_case "unstable: suppressed fixture" `Quick test_unstable_allow;
    Alcotest.test_case "mutable: fixture fires" `Quick test_mutable_bad;
    Alcotest.test_case "mutable: policy scope only" `Quick test_mutable_needs_policy_scope;
    Alcotest.test_case "mutable: clean fixture" `Quick test_mutable_ok;
    Alcotest.test_case "mutable: suppressed fixture" `Quick test_mutable_allow;
    Alcotest.test_case "io: fixture fires" `Quick test_io_bad;
    Alcotest.test_case "io: allowed in bin/display" `Quick test_io_ok_in_bin;
    Alcotest.test_case "io: clean fixture" `Quick test_io_ok;
    Alcotest.test_case "io: suppressed fixture" `Quick test_io_allow;
    Alcotest.test_case "wallclock: fixture fires" `Quick test_wallclock_bad;
    Alcotest.test_case "wallclock: clock scope exempt" `Quick test_wallclock_clock_scope;
    Alcotest.test_case "wallclock: clean fixture" `Quick test_wallclock_ok;
    Alcotest.test_case "wallclock: suppressed fixture" `Quick test_wallclock_allow;
    Alcotest.test_case "wallclock: lib/obs/clock.ml allowlisted" `Quick test_clock_module_classified;
    Alcotest.test_case "wallclock: more specific than nondet" `Quick test_wallclock_beats_nondet;
    Alcotest.test_case "concurrency: fixture fires" `Quick test_concurrency_bad;
    Alcotest.test_case "concurrency: pool scope exempt" `Quick test_concurrency_pool_scope;
    Alcotest.test_case "concurrency: clean fixture" `Quick test_concurrency_ok;
    Alcotest.test_case "concurrency: suppressed fixture" `Quick test_concurrency_allow;
    Alcotest.test_case "concurrency: lib/stats/pool.ml allowlisted" `Quick
      test_pool_module_classified;
    Alcotest.test_case "mli: orphan flagged, covered clean" `Quick test_mli_coverage;
    Alcotest.test_case "polycmp: Stdlib. prefix normalized" `Quick test_stdlib_prefix_normalized;
    Alcotest.test_case "unstable: named comparator trusted" `Quick test_named_comparator_trusted;
    Alcotest.test_case "unstable: tuple key is a tie-break" `Quick test_tuple_key_is_tie_break;
    Alcotest.test_case "parse error reported" `Quick test_parse_error;
    Alcotest.test_case "scope gates nondet rule" `Quick test_scope_gates_nondet;
    Alcotest.test_case "suppress: line scope" `Quick test_suppress_scope_lines;
    Alcotest.test_case "suppress: RJLnnn synonym" `Quick test_suppress_code_synonym;
    Alcotest.test_case "suppress: all" `Quick test_suppress_all;
    Alcotest.test_case "suppress: two findings, one line" `Quick
      test_suppress_multiple_findings_one_line;
    Alcotest.test_case "suppress: last line, no newline" `Quick
      test_suppress_last_line_no_newline;
    Alcotest.test_case "suppress: CRLF sources" `Quick test_suppress_crlf_source;
    Alcotest.test_case "stale: unused entry flagged" `Quick test_stale_suppress_fires;
    Alcotest.test_case "stale: used entry quiet" `Quick test_stale_suppress_used_entry_quiet;
    Alcotest.test_case "stale: typed rules gated by tier" `Quick test_stale_suppress_tier_gating;
    Alcotest.test_case "stale: driver reports a warning" `Quick test_stale_suppress_driver_warns;
    Alcotest.test_case "report order is a pinned total order" `Quick test_finding_order_total;
    Alcotest.test_case "io: std-channel applied forms" `Quick test_io_applied_std_channels;
    Alcotest.test_case "rule catalog roundtrips" `Quick test_rule_roundtrip;
    Alcotest.test_case "human report format" `Quick test_human_format;
    Alcotest.test_case "json report format" `Quick test_driver_json;
    Alcotest.test_case "driver: clean exit 0" `Quick test_driver_clean_exit;
    Alcotest.test_case "driver: usage error exit 2" `Quick test_driver_usage_error;
    Alcotest.test_case "meta: the repository lints itself clean" `Quick test_repo_is_clean;
  ]
