(* Tests for the telemetry layer (lib/obs/) and its driver wiring.

   The exporter goldens are exact byte-for-byte strings: the registry
   iterates deterministically and floats print in shortest round-tripping
   form, so any drift in the exposition formats is a real change.  All
   histogram inputs are dyadic so sums are exact.

   The differential tests are the layer's core contract: schedules and
   traces are byte-identical with telemetry off, with counters only, and
   with span timing on. *)

open Sched_model
module O = Sched_obs
module Metric = O.Metric
module Registry = O.Registry
module Sink = O.Sink
module Clock = O.Clock
module J = O.Ndjson

(* --- instruments ------------------------------------------------------- *)

let test_counter () =
  let c = Metric.Counter.make () in
  Alcotest.(check (float 0.)) "zero" 0. (Metric.Counter.value c);
  Metric.Counter.inc c;
  Metric.Counter.add c 2.5;
  Alcotest.(check (float 0.)) "sum" 3.5 (Metric.Counter.value c);
  let monotone f =
    match f () with
    | exception Invalid_argument _ -> ()
    | () -> Alcotest.fail "expected Invalid_argument"
  in
  monotone (fun () -> Metric.Counter.add c (-1.));
  monotone (fun () -> Metric.Counter.add c Float.nan);
  Alcotest.(check (float 0.)) "unchanged after rejects" 3.5 (Metric.Counter.value c)

let test_gauge () =
  let g = Metric.Gauge.make () in
  Metric.Gauge.set g 4.;
  Metric.Gauge.inc g;
  Metric.Gauge.dec g;
  Metric.Gauge.add g (-1.5);
  Alcotest.(check (float 0.)) "value" 2.5 (Metric.Gauge.value g)

let test_histogram () =
  let h = Metric.Histogram.make ~buckets:[ 0.125; 1.; 8. ] in
  List.iter (Metric.Histogram.observe h) [ 0.125; 0.5; 2.; 100.; Float.nan ];
  Alcotest.(check int) "count" 5 (Metric.Histogram.count h);
  (* NaN contributes to the overflow bucket but poisons no finite sum:
     it is excluded from [sum]. *)
  Alcotest.(check (float 0.)) "sum" 102.625 (Metric.Histogram.sum h);
  Alcotest.(check (list (pair (float 0.) int)))
    "cumulative"
    [ (0.125, 1); (1., 2); (8., 3); (Float.infinity, 5) ]
    (Metric.Histogram.cumulative h)

let test_histogram_validation () =
  let invalid buckets =
    match Metric.Histogram.make ~buckets with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  invalid [];
  invalid [ 1.; 1. ];
  invalid [ 2.; 1. ];
  invalid [ Float.nan ]

(* --- registry ---------------------------------------------------------- *)

let test_registry_get_or_create () =
  let reg = Registry.create () in
  let a = Registry.counter reg "hits_total" in
  let b = Registry.counter reg "hits_total" in
  Metric.Counter.inc a;
  Metric.Counter.inc b;
  (* Same cell: both increments visible through either handle. *)
  Alcotest.(check (float 0.)) "shared" 2. (Metric.Counter.value a);
  Alcotest.(check int) "one entry" 1 (Registry.size reg)

let test_registry_label_normalization () =
  let reg = Registry.create () in
  let a = Registry.gauge reg ~labels:[ ("b", "2"); ("a", "1") ] "depth" in
  let b = Registry.gauge reg ~labels:[ ("a", "1"); ("b", "2") ] "depth" in
  Metric.Gauge.inc a;
  Metric.Gauge.inc b;
  Alcotest.(check (float 0.)) "same cell" 2. (Metric.Gauge.value a);
  match Registry.find reg ~name:"depth" ~labels:[ ("b", "2"); ("a", "1") ] with
  | None -> Alcotest.fail "find failed"
  | Some e ->
      Alcotest.(check (list (pair string string)))
        "sorted" [ ("a", "1"); ("b", "2") ] e.Registry.labels

let test_registry_rejects_bad_input () =
  let reg = Registry.create () in
  let invalid f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  invalid (fun () -> Registry.counter reg "9starts_with_digit");
  invalid (fun () -> Registry.counter reg "has-dash");
  invalid (fun () -> Registry.counter reg ~labels:[ ("k", "1"); ("k", "2") ] "dup_keys");
  (* One name is one instrument kind. *)
  let _ = Registry.counter reg "family" in
  invalid (fun () -> Registry.gauge reg "family")

let test_registry_deterministic_order () =
  let build names =
    let reg = Registry.create () in
    List.iter (fun n -> ignore (Registry.counter reg n)) names;
    List.map (fun (e : Registry.entry) -> e.Registry.name) (Registry.entries reg)
  in
  let sorted = build [ "zeta"; "alpha"; "mid" ] in
  Alcotest.(check (list string)) "sorted" [ "alpha"; "mid"; "zeta" ] sorted;
  Alcotest.(check (list string)) "order independent" sorted (build [ "mid"; "zeta"; "alpha" ])

(* --- clock ------------------------------------------------------------- *)

let test_clocks () =
  let f = Clock.frozen 5. in
  Alcotest.(check (float 0.)) "frozen" 5. (f ());
  Alcotest.(check (float 0.)) "frozen again" 5. (f ());
  let t = Clock.ticker ~start:10. ~step:0.5 () in
  let t1 = t () in
  let t2 = t () in
  let t3 = t () in
  Alcotest.(check (list (float 0.))) "ticker" [ 10.; 10.5; 11. ] [ t1; t2; t3 ];
  let counted, calls = Clock.calls (Clock.ticker ()) in
  ignore (counted ());
  ignore (counted ());
  Alcotest.(check int) "calls" 2 (calls ());
  let m = Clock.monotonic () in
  let a = m () in
  let b = m () in
  Alcotest.(check bool) "monotonic" true (b >= a)

(* --- sinks ------------------------------------------------------------- *)

let test_null_sink_records_nothing () =
  (* The null sink must neither touch a registry nor read any clock; it
     returns the thunk's value and passes exceptions through. *)
  Alcotest.(check int) "value" 7 (Sink.time Sink.null "phase" (fun () -> 7));
  Alcotest.check_raises "exn" Exit (fun () -> Sink.time Sink.null "phase" (fun () -> raise Exit));
  let obs = O.Obs.create () in
  Alcotest.(check int) "registry untouched" 0 (Registry.size (O.Obs.registry obs))

let test_spans_sink_aggregates () =
  let reg = Registry.create () in
  let clock, calls = Clock.calls (Clock.ticker ~start:0. ~step:0.25 ()) in
  let sink = Sink.spans ~clock reg in
  Alcotest.(check int) "result" 3 (Sink.time sink "select" (fun () -> 3));
  ignore (Sink.time sink "select" (fun () -> 0));
  ignore (Sink.time sink "heap" (fun () -> 0));
  (* Two clock reads per span. *)
  Alcotest.(check int) "clock reads" 6 (calls ());
  match Registry.find reg ~name:"obs_phase_seconds" ~labels:[ ("phase", "select") ] with
  | Some { Registry.instrument = Registry.Histogram h; _ } ->
      Alcotest.(check int) "spans" 2 (Metric.Histogram.count h);
      (* Ticker step 0.25: every span lasts exactly one step. *)
      Alcotest.(check (float 0.)) "durations" 0.5 (Metric.Histogram.sum h)
  | _ -> Alcotest.fail "expected select histogram"

let test_spans_sink_records_on_exception () =
  let reg = Registry.create () in
  let sink = Sink.spans ~clock:(Clock.ticker ()) reg in
  Alcotest.check_raises "exn" Exit (fun () -> Sink.time sink "boom" (fun () -> raise Exit));
  match Registry.find reg ~name:"obs_phase_seconds" ~labels:[ ("phase", "boom") ] with
  | Some { Registry.instrument = Registry.Histogram h; _ } ->
      Alcotest.(check int) "recorded" 1 (Metric.Histogram.count h)
  | _ -> Alcotest.fail "expected boom histogram"

(* --- exporter goldens -------------------------------------------------- *)

let golden_registry () =
  let reg = Registry.create () in
  let c = Registry.counter reg ~help:"Total things" "things_total" in
  Metric.Counter.add c 3.;
  let g = Registry.gauge reg ~labels:[ ("machine", "1") ] "queue_depth" in
  Metric.Gauge.set g 2.5;
  let h = Registry.histogram reg ~help:"Latency" ~buckets:[ 0.125; 1. ] "latency_seconds" in
  List.iter (Metric.Histogram.observe h) [ 0.0625; 0.5; 5. ];
  reg

let test_prometheus_golden () =
  let expected =
    "# HELP latency_seconds Latency\n\
     # TYPE latency_seconds histogram\n\
     latency_seconds_bucket{le=\"0.125\"} 1\n\
     latency_seconds_bucket{le=\"1\"} 2\n\
     latency_seconds_bucket{le=\"+Inf\"} 3\n\
     latency_seconds_sum 5.5625\n\
     latency_seconds_count 3\n\
     # TYPE queue_depth gauge\n\
     queue_depth{machine=\"1\"} 2.5\n\
     # HELP things_total Total things\n\
     # TYPE things_total counter\n\
     things_total 3\n"
  in
  Alcotest.(check string) "prometheus" expected (O.Export.prometheus (golden_registry ()))

let test_json_golden () =
  let expected =
    "{\n\
    \  \"schema\": \"rejsched.metrics/1\",\n\
    \  \"metrics\": [\n\
    \    { \"name\": \"latency_seconds\", \"type\": \"histogram\", \"labels\": {}, \"count\": 3, \
     \"sum\": 5.5625, \"buckets\": \
     [{\"le\":\"0.125\",\"count\":1},{\"le\":\"1\",\"count\":2},{\"le\":\"+Inf\",\"count\":3}] },\n\
    \    { \"name\": \"queue_depth\", \"type\": \"gauge\", \"labels\": {\"machine\":\"1\"}, \
     \"value\": 2.5 },\n\
    \    { \"name\": \"things_total\", \"type\": \"counter\", \"labels\": {}, \"value\": 3 }\n\
    \  ]\n\
     }\n"
  in
  Alcotest.(check string) "json" expected (O.Export.json (golden_registry ()))

let test_ndjson_primitives () =
  Alcotest.(check string) "escape" "a\\\"b\\\\c\\n\\u0001" (J.escape "a\"b\\c\n\001");
  Alcotest.(check string) "float" "1.5" (J.float_repr 1.5);
  Alcotest.(check string) "integral" "3" (J.float_repr 3.);
  Alcotest.(check string) "nan" "\"NaN\"" (J.float_repr Float.nan);
  Alcotest.(check string) "inf" "\"Infinity\"" (J.float_repr Float.infinity);
  Alcotest.(check string) "neg-inf" "\"-Infinity\"" (J.float_repr Float.neg_infinity);
  Alcotest.(check string) "tenth" "0.1" (J.float_repr 0.1);
  Alcotest.(check string) "line"
    "{\"schema\":\"s/1\",\"a\":1,\"b\":\"x\\\"y\",\"c\":null,\"d\":true}"
    (J.line ~schema:"s/1"
       [ ("a", J.Int 1); ("b", J.String "x\"y"); ("c", J.Null); ("d", J.Bool true) ])

(* A non-finite gauge (e.g. a max-stretch that divided by zero) must not
   corrupt the JSON snapshot: the value renders as a quoted sentinel
   token, keeping the document parseable and the three non-finite values
   distinguishable. *)
let test_json_non_finite_gauge () =
  let reg = Registry.create () in
  Metric.Gauge.set (Registry.gauge reg "stretch_max") Float.infinity;
  Metric.Gauge.set (Registry.gauge reg "undefined_ratio") Float.nan;
  let json = O.Export.json reg in
  Alcotest.(check bool) "infinity token" true
    (Test_util.contains json "\"value\": \"Infinity\"");
  Alcotest.(check bool) "nan token" true (Test_util.contains json "\"value\": \"NaN\"");
  Alcotest.(check bool) "no bare nan" false (Test_util.contains json ": nan");
  Alcotest.(check bool) "no bare inf" false (Test_util.contains json ": inf")

let test_trace_ndjson_golden () =
  let t = Sched_sim.Trace.create () in
  Sched_sim.Trace.record t 0.5 (Sched_sim.Trace.Dispatch { job = 0; machine = 1 });
  Sched_sim.Trace.record t 0.5 (Sched_sim.Trace.Start { job = 0; machine = 1; speed = 1. });
  Sched_sim.Trace.record t 2.25
    (Sched_sim.Trace.Reject { job = 0; machine = 1; was_running = true; remaining = 0.75 });
  Sched_sim.Trace.record t 3. (Sched_sim.Trace.Restart { job = 2; machine = 0; wasted = 1.5 });
  Sched_sim.Trace.record t 4. (Sched_sim.Trace.Complete { job = 2; machine = 0 });
  let expected =
    "{\"schema\":\"rejsched.trace/1\",\"time\":0.5,\"event\":\"dispatch\",\"job\":0,\"machine\":1}\n\
     {\"schema\":\"rejsched.trace/1\",\"time\":0.5,\"event\":\"start\",\"job\":0,\"machine\":1,\"speed\":1}\n\
     {\"schema\":\"rejsched.trace/1\",\"time\":2.25,\"event\":\"reject\",\"job\":0,\"machine\":1,\"was_running\":true,\"remaining\":0.75}\n\
     {\"schema\":\"rejsched.trace/1\",\"time\":3,\"event\":\"restart\",\"job\":2,\"machine\":0,\"wasted\":1.5}\n\
     {\"schema\":\"rejsched.trace/1\",\"time\":4,\"event\":\"complete\",\"job\":2,\"machine\":0}\n"
  in
  Alcotest.(check string) "ndjson" expected (Sched_sim.Trace_export.to_ndjson t)

(* --- trace profiles ---------------------------------------------------- *)

let test_pending_profile () =
  let module T = Sched_sim.Trace in
  let t = T.create () in
  T.record t 1. (T.Dispatch { job = 0; machine = 0 });
  T.record t 1. (T.Start { job = 0; machine = 0; speed = 1. });
  T.record t 2. (T.Dispatch { job = 1; machine = 0 });
  T.record t 3. (T.Reject { job = 1; machine = 0; was_running = false; remaining = 4. });
  T.record t 4. (T.Restart { job = 0; machine = 0; wasted = 3. });
  T.record t 4. (T.Start { job = 0; machine = 0; speed = 1. });
  T.record t 5. (T.Reject { job = 2; machine = 1; was_running = true; remaining = 1. });
  T.record t 6. (T.Complete { job = 0; machine = 0 });
  let profile = Alcotest.(list (pair (float 0.) int)) in
  (match T.pending_profile t ~machines:2 with
  | [ (0, p0); (1, p1) ] ->
      Alcotest.check profile "pending m0"
        [ (1., 1); (1., 0); (2., 1); (3., 0); (4., 1); (4., 0) ]
        p0;
      (* A mid-run reject never touches the pending series. *)
      Alcotest.check profile "pending m1" [] p1
  | _ -> Alcotest.fail "expected two machines");
  (* The original dispatched-not-finished series is untouched by the new
     one: Start/Restart still invisible, mid-run reject still a -1. *)
  match T.queue_profile t ~machines:2 with
  | [ (0, q0); (1, q1) ] ->
      Alcotest.check profile "queue m0" [ (1., 1); (2., 2); (3., 1); (6., 0) ] q0;
      Alcotest.check profile "queue m1" [ (5., -1) ] q1
  | _ -> Alcotest.fail "expected two machines"

let test_profiles_from_live_run () =
  (* On a completed restart-heavy run, both series must return to zero on
     every machine. *)
  let inst = Test_util.random_instance ~seed:77 ~n:30 ~m:3 () in
  let module RS = Sched_baselines.Restart_spt in
  let trace = Sched_sim.Trace.create () in
  let _ = Sched_sim.Driver.run ~trace (RS.policy (RS.config ~max_restarts:1 ())) inst in
  let final = function [] -> 0 | l -> snd (List.nth l (List.length l - 1)) in
  List.iter
    (fun (i, series) -> Alcotest.(check int) (Printf.sprintf "pending m%d drains" i) 0 (final series))
    (Sched_sim.Trace.pending_profile trace ~machines:3);
  List.iter
    (fun (i, series) -> Alcotest.(check int) (Printf.sprintf "queue m%d drains" i) 0 (final series))
    (Sched_sim.Trace.queue_profile trace ~machines:3)

(* --- driver wiring: differential and reconciliation -------------------- *)

let instances =
  List.init 12 (fun k ->
      Test_util.random_instance ~weighted:(k mod 2 = 1) ~restricted:(k mod 3 = 0)
        ~seed:(4000 + k) ~n:(10 + (k * 3)) ~m:(1 + (k mod 3)) ())

let run_spt obs inst =
  let trace = Sched_sim.Trace.create () in
  let s = Sched_sim.Driver.run_schedule ~trace ?obs Sched_baselines.Greedy_dispatch.spt inst in
  (Serialize.schedule_to_string s, Sched_sim.Trace_export.to_ndjson trace)

let run_fr obs inst =
  let module FR = Rejection.Flow_reject in
  let trace = Sched_sim.Trace.create () in
  let s, _ = FR.run ~trace ?obs (FR.config ~eps:0.25 ()) inst in
  (Serialize.schedule_to_string s, Sched_sim.Trace_export.to_ndjson trace)

let run_restart obs inst =
  let module RS = Sched_baselines.Restart_spt in
  let trace = Sched_sim.Trace.create () in
  let s, _ = Sched_sim.Driver.run ~trace ?obs (RS.policy (RS.config ~max_restarts:1 ())) inst in
  (Serialize.schedule_to_string s, Sched_sim.Trace_export.to_ndjson trace)

let test_obs_does_not_change_schedules () =
  List.iter
    (fun (name, run) ->
      List.iter
        (fun inst ->
          let bare_s, bare_t = run None inst in
          let counted_s, counted_t = run (Some (O.Obs.create ())) inst in
          let timed_s, timed_t =
            run (Some (O.Obs.timed ~clock:(Clock.ticker ()) ())) inst
          in
          let check what a b =
            if a <> b then
              Alcotest.failf "%s: %s not byte-identical on %s" name what inst.Instance.name
          in
          check "schedule (counters)" bare_s counted_s;
          check "schedule (spans)" bare_s timed_s;
          check "trace (counters)" bare_t counted_t;
          check "trace (spans)" bare_t timed_t)
        instances)
    [ ("greedy-spt", run_spt); ("flow-reject", run_fr); ("restart-spt", run_restart) ]

let counter_value reg name =
  match Registry.find reg ~name ~labels:[] with
  | Some { Registry.instrument = Registry.Counter c; _ } ->
      int_of_float (Metric.Counter.value c)
  | _ -> Alcotest.failf "missing counter %s" name

let gauge_value reg name machine =
  match Registry.find reg ~name ~labels:[ ("machine", string_of_int machine) ] with
  | Some { Registry.instrument = Registry.Gauge g; _ } -> Metric.Gauge.value g
  | _ -> Alcotest.failf "missing gauge %s{machine=%d}" name machine

let test_counters_reconcile () =
  List.iter
    (fun inst ->
      let module FR = Rejection.Flow_reject in
      let obs = O.Obs.create () in
      let s, _ = FR.run ~obs (FR.config ~eps:0.25 ()) inst in
      let reg = O.Obs.registry obs in
      let r = Metrics.rejection s in
      let n = Instance.n inst in
      let dispatch = counter_value reg "sched_dispatch_total" in
      let start = counter_value reg "sched_start_total" in
      let complete = counter_value reg "sched_complete_total" in
      let reject = counter_value reg "sched_reject_total" in
      let midrun = counter_value reg "sched_reject_midrun_total" in
      let restart = counter_value reg "sched_restart_total" in
      Alcotest.(check int) "dispatch = n" n dispatch;
      Alcotest.(check int) "complete + reject = n" n (complete + reject);
      Alcotest.(check int) "start = complete + midrun + restart" start
        (complete + midrun + restart);
      (* The counters agree exactly with the post-hoc metrics pass. *)
      Alcotest.(check int) "reject = Metrics.rejection.count" r.Metrics.count reject;
      Alcotest.(check int) "midrun = Metrics.rejection.mid_run" r.Metrics.mid_run midrun;
      for i = 0 to Instance.m inst - 1 do
        Alcotest.(check (float 0.)) "pending gauge drains" 0. (gauge_value reg "sched_pending_jobs" i);
        Alcotest.(check (float 0.)) "inflight gauge drains" 0.
          (gauge_value reg "sched_inflight_jobs" i)
      done)
    instances

let test_restart_counter () =
  let inst = Test_util.random_instance ~seed:91 ~n:40 ~m:2 () in
  let module RS = Sched_baselines.Restart_spt in
  let obs = O.Obs.create () in
  let trace = Sched_sim.Trace.create () in
  let _ = Sched_sim.Driver.run ~trace ~obs (RS.policy (RS.config ~max_restarts:2 ())) inst in
  let reg = O.Obs.registry obs in
  let restarts_in_trace =
    List.length
      (List.filter
         (fun (e : Sched_sim.Trace.entry) ->
           match e.Sched_sim.Trace.event with Sched_sim.Trace.Restart _ -> true | _ -> false)
         (Sched_sim.Trace.events trace))
  in
  Alcotest.(check int) "restart counter mirrors trace" restarts_in_trace
    (counter_value reg "sched_restart_total");
  Alcotest.(check int) "start = complete + midrun + restart"
    (counter_value reg "sched_start_total")
    (counter_value reg "sched_complete_total"
    + counter_value reg "sched_reject_midrun_total"
    + counter_value reg "sched_restart_total")

let test_timed_obs_records_phases () =
  let inst = Test_util.random_instance ~seed:13 ~n:25 ~m:2 () in
  let obs = O.Obs.timed ~clock:(Clock.ticker ()) () in
  let _ = Sched_sim.Driver.run ~obs Sched_baselines.Greedy_dispatch.spt inst in
  let reg = O.Obs.registry obs in
  List.iter
    (fun phase ->
      match Registry.find reg ~name:"obs_phase_seconds" ~labels:[ ("phase", phase) ] with
      | Some { Registry.instrument = Registry.Histogram h; _ } ->
          Alcotest.(check bool) (phase ^ " observed") true (Metric.Histogram.count h > 0)
      | _ -> Alcotest.failf "missing phase histogram %s" phase)
    [ "on_arrival"; "select"; "segment"; "heap" ]

(* --- registry merge (parallel shard fold-back) ------------------------- *)

let test_registry_merge () =
  let src = Registry.create () and dst = Registry.create () in
  Metric.Counter.add (Registry.counter dst "jobs_total") 2.;
  Metric.Counter.add (Registry.counter src "jobs_total") 3.;
  Metric.Gauge.set (Registry.gauge dst "queue_depth") 7.;
  Metric.Gauge.set (Registry.gauge src "queue_depth") 4.;
  let hd = Registry.histogram dst ~buckets:[ 1.; 2. ] "latency" in
  let hs = Registry.histogram src ~buckets:[ 1.; 2. ] "latency" in
  List.iter (Metric.Histogram.observe hd) [ 0.5; 1.5 ];
  List.iter (Metric.Histogram.observe hs) [ 1.5; 4. ];
  Metric.Counter.inc (Registry.counter src ~labels:[ ("experiment", "e9") ] "only_in_src");
  Registry.merge ~into:dst src;
  Alcotest.(check (float 0.)) "counters add" 5.
    (Metric.Counter.value (Registry.counter dst "jobs_total"));
  Alcotest.(check (float 0.)) "gauge: last-merged wins" 4.
    (Metric.Gauge.value (Registry.gauge dst "queue_depth"));
  Alcotest.(check int) "histogram counts add" 4 (Metric.Histogram.count hd);
  Alcotest.(check (float 0.)) "histogram sums add" 7.5 (Metric.Histogram.sum hd);
  Alcotest.(check (list (pair (float 0.) int)))
    "bucket-wise addition"
    [ (1., 1); (2., 3); (Float.infinity, 4) ]
    (Metric.Histogram.cumulative hd);
  Alcotest.(check (float 0.)) "source-only entries created" 1.
    (Metric.Counter.value (Registry.counter dst ~labels:[ ("experiment", "e9") ] "only_in_src"));
  (* The source shard is read-only to merge. *)
  Alcotest.(check (float 0.)) "source untouched" 3.
    (Metric.Counter.value (Registry.counter src "jobs_total"))

let test_registry_merge_mismatch () =
  let expect_invalid what f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" what
  in
  let a = Registry.create () and b = Registry.create () in
  ignore (Registry.histogram a ~buckets:[ 1.; 2. ] "h");
  ignore (Registry.histogram b ~buckets:[ 1.; 4. ] "h");
  expect_invalid "bucket bounds differ" (fun () -> Registry.merge ~into:a b);
  let c = Registry.create () and d = Registry.create () in
  ignore (Registry.counter c "x");
  Metric.Gauge.set (Registry.gauge d "x") 1.;
  expect_invalid "instrument kinds differ" (fun () -> Registry.merge ~into:c d)

let test_merge_export_identity () =
  (* Recording everything into one registry and recording into per-task
     shards merged back in task order must export byte-identically —
     the property the pooled experiment suite relies on. *)
  let record reg k =
    Metric.Counter.add (Registry.counter reg ~help:"jobs" "jobs_total") (float_of_int k);
    Metric.Gauge.set (Registry.gauge reg ~labels:[ ("machine", "0") ] "depth") (float_of_int k);
    Metric.Histogram.observe
      (Registry.histogram reg ~buckets:[ 1.; 8. ] "size")
      (0.25 *. float_of_int k)
  in
  let tasks = [ 1; 2; 3; 4 ] in
  let direct = Registry.create () in
  List.iter (record direct) tasks;
  let merged = Registry.create () in
  List.iter
    (fun k ->
      let shard = Registry.create () in
      record shard k;
      Registry.merge ~into:merged shard)
    tasks;
  Alcotest.(check string) "json identical" (O.Export.json direct) (O.Export.json merged);
  Alcotest.(check string) "prometheus identical" (O.Export.prometheus direct)
    (O.Export.prometheus merged)

let suite =
  [
    Alcotest.test_case "counter semantics" `Quick test_counter;
    Alcotest.test_case "gauge semantics" `Quick test_gauge;
    Alcotest.test_case "histogram le semantics" `Quick test_histogram;
    Alcotest.test_case "histogram validates buckets" `Quick test_histogram_validation;
    Alcotest.test_case "registry: get-or-create" `Quick test_registry_get_or_create;
    Alcotest.test_case "registry: labels normalized" `Quick test_registry_label_normalization;
    Alcotest.test_case "registry: rejects bad input" `Quick test_registry_rejects_bad_input;
    Alcotest.test_case "registry: deterministic order" `Quick test_registry_deterministic_order;
    Alcotest.test_case "registry: merge semantics" `Quick test_registry_merge;
    Alcotest.test_case "registry: merge rejects mismatches" `Quick test_registry_merge_mismatch;
    Alcotest.test_case "registry: sharded export identity" `Quick test_merge_export_identity;
    Alcotest.test_case "clocks: frozen/ticker/calls/monotonic" `Quick test_clocks;
    Alcotest.test_case "null sink records nothing" `Quick test_null_sink_records_nothing;
    Alcotest.test_case "spans sink aggregates" `Quick test_spans_sink_aggregates;
    Alcotest.test_case "spans sink records on exception" `Quick test_spans_sink_records_on_exception;
    Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden;
    Alcotest.test_case "json golden" `Quick test_json_golden;
    Alcotest.test_case "ndjson primitives" `Quick test_ndjson_primitives;
    Alcotest.test_case "json snapshot carries non-finite gauges" `Quick
      test_json_non_finite_gauge;
    Alcotest.test_case "trace ndjson golden" `Quick test_trace_ndjson_golden;
    Alcotest.test_case "pending profile semantics" `Quick test_pending_profile;
    Alcotest.test_case "profiles drain on live runs" `Quick test_profiles_from_live_run;
    Alcotest.test_case "telemetry never changes schedules" `Quick test_obs_does_not_change_schedules;
    Alcotest.test_case "counters reconcile with metrics" `Quick test_counters_reconcile;
    Alcotest.test_case "restart counter mirrors trace" `Quick test_restart_counter;
    Alcotest.test_case "timed obs records all phases" `Quick test_timed_obs_records_phases;
  ]
