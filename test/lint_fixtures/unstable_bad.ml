(* Fixture: an unstable Array.sort whose comparator has no visible
   total tie-break fires RJL003 (equal-keyed elements would land in an
   input-order-dependent order: a replay hazard). *)

type seg = { start : float; id : int }

let order (a : seg array) = Array.sort (fun x y -> Float.compare x.start y.start) a
