(* Fixture: RJL005 violations silenced by suppressions. *)

(* rejlint: allow stray-io *)
let show x = print_endline x

let report n = Printf.printf "n=%d\n" n (* rejlint: allow stray-io *)
