(* Fixture: deterministic code that must NOT fire RJL001.  Hashtbl
   lookup (as opposed to iteration) is allowed. *)

let now ~clock = clock
let sum l = List.fold_left ( + ) 0 l
let lookup tbl k = Hashtbl.find_opt tbl k
