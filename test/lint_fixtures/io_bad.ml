(* Fixture: console I/O fires RJL005 under plain lib/ scope. *)

let show x = print_endline x
let report n = Printf.printf "n=%d\n" n
let warn msg = prerr_endline msg
let tick () = Format.printf "@."
let fshow n = Printf.fprintf stdout "n=%d\n" n
let fwarn msg = Format.fprintf Format.err_formatter "%s@." msg
let raw s = output_string stdout s
