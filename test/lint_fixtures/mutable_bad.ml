(* Fixture: toplevel mutable state fires RJL004 under policy scope
   (lib/core/, lib/baselines/). *)

let hits = ref 0
let cache = Array.make 16 0.
let table : (int, int) Hashtbl.t = Hashtbl.create 64
let scratch = Buffer.create 256
let grid = [| 1; 2; 3 |]
