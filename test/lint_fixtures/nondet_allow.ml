(* Fixture: the same violations as nondet_bad.ml, each silenced by a
   suppression comment (above the line or trailing it). *)

(* rejlint: allow nondet-source *)
let seed () = Random.self_init ()

let pid () = Unix.getpid () (* rejlint: allow nondet-source *)

(* rejlint: allow RJL001 *)
let sum tbl = Hashtbl.fold (fun _ v acc -> v + acc) tbl 0

(* rejlint: allow all *)
let bucket x = Hashtbl.hash x mod 16
