(* Fixture: a deliberately boxed variant of the flat event loop's
   shapes.  Every hot body below allocates structurally; RJL103 flags
   each construct. *)

type st = { mutable clock : float; q : float array }

let[@rejlint.hot] step st i =
  let pair = (st.q.(i), i) in
  st.clock <- fst pair;
  Some i

let[@rejlint.hot] total st = st.q.(0) +. st.clock

let[@rejlint.hot] reader st =
  let f i = st.q.(i) in
  f
