(* Fixture: polymorphic comparison at float-bearing types — invisible
   to tier 1's RJL002 (no sort in sight), flagged by RJL101 from the
   instantiated types. *)

type point = { x : float; y : float }

let close a (b : point) = a = b
let worst xs = List.fold_left min infinity xs
let order (a : point) b = compare a b
