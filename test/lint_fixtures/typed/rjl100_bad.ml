(* Fixture: banned paths the syntactic tier cannot see — a module
   alias, a functor application, and a [let module] rebinding.  The
   typed tier resolves all three and fires RJL100. *)

module R = Random

module H = Hashtbl.Make (struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.seeded_hash 0
end)

let reseed () = R.self_init ()
let walk (h : int H.t) f = H.iter f h

let elapsed () =
  let module S = Sys in
  S.time ()
