(* Fixture: the allocation-free flat-core idiom — stored-float reads,
   in-place float arithmetic, int returns, and a [@rejlint.cold] branch
   that is allowed to allocate. *)

type st = { mutable clock : float; mutable hits : int; q : float array }

let[@rejlint.hot] clock st = st.q.(0)
let[@rejlint.hot] set_clock st v = st.clock <- v
let[@rejlint.hot] bump st i = st.q.(i) <- st.q.(i) +. 1.0

let[@rejlint.hot] count st =
  st.hits <- st.hits + 1;
  st.hits

let[@rejlint.hot] sample st i = if st.clock > 0.0 then (Some i [@rejlint.cold]) else None
