(* Fixture: aliases of benign modules stay silent, and a direct banned
   call is the syntactic tier's finding — RJL100 must not double-report
   what tier 1 already sees. *)

module L = List

let total xs = L.fold_left ( + ) 0 xs

(* Visible to tier 1 (RJL007 owns it): RJL100 stays quiet here. *)
let process_clock () = Sys.time ()
