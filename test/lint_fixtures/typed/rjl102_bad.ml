(* Fixture: a policy registry whose entries are impure — one reaches a
   mutable toplevel through a helper, one calls Random directly.  RJL102
   walks the call graph and flags both. *)

let table : (string, int) Hashtbl.t = Hashtbl.create 16
let lookup name = Hashtbl.find_opt table name

module Policy_registry = struct
  let pack name = lookup name
  let seeded () = Random.int 10
end
