(* Fixture: a pure registry.  The mutable toplevel exists but no entry
   point reaches it, so RJL102 stays silent. *)

let unreached_cache : (string, int) Hashtbl.t = Hashtbl.create 16
let scale = 2.0
let double x = x *. scale

module Policy_registry = struct
  let pack x = double x
  let shift x = x + 1
end

let outside_user () = Hashtbl.length unreached_cache
