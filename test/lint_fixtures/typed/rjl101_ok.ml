(* Fixture: the comparisons RJL101 accepts — constant-constructor
   equality (tag inspection only), safe atomic types, primitive float
   ordering, and the typed comparators themselves. *)

let is_empty l = l = []
let missing o = o = None
let le (a : int) b = a <= b
let before (a : float) b = a < b
let fcmp (a : float) b = Float.compare a b
