(* Fixture: every banned time source fires RJL007 when linted under lib/
   scope (and is exempt under the clock scope). *)

let cpu () = Sys.time ()
let wall () = Unix.gettimeofday ()
let posix () = Unix.time ()
