(* Fixture: heap-comparator RJL002 findings honour suppressions. *)

let by_key () = Pqueue.Indexed.create ~cmp:compare () (* rejlint: allow RJL002 *)

let flat_order keys =
  (* rejlint: allow poly-compare *)
  Pqueue.Iheap.create ~less:(fun a b -> keys.(a) < keys.(b)) ()
