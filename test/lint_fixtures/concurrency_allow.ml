(* Fixture: suppression comments silence RJL008 line by line. *)

(* rejlint: allow raw-concurrency *)
let spawned () = Domain.spawn (fun () -> 1)

let cell = Atomic.make 0 (* rejlint: allow RJL008 *)
let guard = Mutex.create () (* rejlint: allow all *)
