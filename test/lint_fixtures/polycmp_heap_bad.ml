(* Fixture: polymorphic comparators handed to the simulator's heap
   constructors fire RJL002, exactly as they do in sorts. *)

let by_key () = Pqueue.Indexed.create ~cmp:compare ()

let by_key_lambda keys =
  Pqueue.Indexed.create ~cmp:(fun a b -> compare keys.(a) keys.(b)) ()

let flat_order keys =
  Pqueue.Iheap.create ~less:(fun a b -> keys.(a) < keys.(b)) ()

let qualified_flat () = Sched_sim.Pqueue.Iheap.create ~less:(fun a b -> a < b) ()
