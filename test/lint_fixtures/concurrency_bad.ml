(* Fixture: every banned concurrency primitive fires RJL008 when linted
   under lib/ scope (and is exempt under the pool scope). *)

let spawned () = Domain.spawn (fun () -> 1)
let joined d = Domain.join d
let cell = Atomic.make 0
let bump () = Atomic.incr cell
let guard = Mutex.create ()
let locked f =
  Mutex.lock guard;
  let x = f () in
  Mutex.unlock guard;
  x
let wake = Condition.create ()
let notify () = Condition.broadcast wake
