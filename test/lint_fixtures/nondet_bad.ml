(* Fixture: every banned nondeterminism source fires RJL001 when linted
   under lib/ scope. *)

let seed () = Random.self_init ()
let cpu () = Sys.time ()
let wall () = Unix.gettimeofday ()
let sum tbl = Hashtbl.fold (fun _ v acc -> v + acc) tbl 0
let dump tbl f = Hashtbl.iter f tbl
let bucket x = Hashtbl.hash x mod 16
