(* Fixture: every banned nondeterminism source fires RJL001 when linted
   under lib/ scope. *)

let seed () = Random.self_init ()
let pid () = Unix.getpid ()
let env () = Unix.environment ()
let sum tbl = Hashtbl.fold (fun _ v acc -> v + acc) tbl 0
let dump tbl f = Hashtbl.iter f tbl
let bucket x = Hashtbl.hash x mod 16
