(* Fixture: RJL002 violations silenced by suppressions. *)

(* rejlint: allow poly-compare *)
let by_value xs = List.sort (fun (a : float) b -> compare a b) xs

let uniq xs = List.sort_uniq compare xs (* rejlint: allow poly-compare *)
