(* Fixture: typed comparators must NOT fire RJL002; polymorphic (=)
   outside a comparator is also fine. *)

let by_value xs = List.sort Float.compare xs
let uniq xs = List.sort_uniq Int.compare xs

let by_pair xs =
  List.sort
    (fun (a, b) (c, d) -> match Float.compare a c with 0 -> Int.compare b d | x -> x)
    xs

let count_zeros xs = List.length (List.filter (fun x -> x = 0) xs)
