(* Fixture: typed or named heap comparators must NOT fire RJL002. *)

let cmp_release (a : float) (b : float) = Float.compare a b
let less_release releases a b = Float.compare releases.(a) releases.(b) < 0
let by_release () = Pqueue.Indexed.create ~cmp:cmp_release ()
let flat_by_release releases = Pqueue.Iheap.create ~less:(less_release releases) ()

let lambda_typed keys =
  Pqueue.Indexed.create ~cmp:(fun a b -> Float.compare keys.(a) keys.(b)) ()

(* [create] on anything that is not a heap module is none of our
   business. *)
let other () = Buffer.create 16
