(* Fixture: RJL003 violation silenced by a suppression. *)

type seg = { start : float; id : int }

(* rejlint: allow unstable-sort *)
let order (a : seg array) = Array.sort (fun x y -> Float.compare x.start y.start) a
