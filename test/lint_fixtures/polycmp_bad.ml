(* Fixture: polymorphic comparisons in sort comparators fire RJL002. *)

let by_value xs = List.sort (fun (a : float) b -> compare a b) xs
let uniq xs = List.sort_uniq compare xs
let sorted_arr a = Array.sort compare a

let by_pair xs =
  List.sort (fun (a, b) (c, d) -> if a = c then compare b d else compare a c) xs
