(* Fixture: clean lib/ module — parallelism reaches it only through a
   submitted task function, never a raw primitive.  Capacity queries and
   domain-local storage are allowed: they neither create domains nor
   synchronize between them. *)

let capacity () = Domain.recommended_domain_count ()

let slot = Domain.DLS.new_key (fun () -> 0)
let stamp v = Domain.DLS.set slot v

let map_with submit f xs = submit (fun () -> List.map f xs)
