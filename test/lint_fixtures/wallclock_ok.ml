(* Fixture: clean lib/ module — time reaches it only through an injected
   clock function, never a direct read. *)

type clock = unit -> float

let span (clock : clock) f =
  let t0 = clock () in
  let x = f () in
  (x, clock () -. t0)
