(* Fixture: acceptable unstable sorts — a chained id tie-break, a sort
   keyed directly on a unique id, a stable sort, and a trusted named
   comparator. *)

type seg = { start : float; id : int }

let order (a : seg array) =
  Array.sort
    (fun x y -> match Float.compare x.start y.start with 0 -> Int.compare x.id y.id | c -> c)
    a

let by_id (a : seg array) = Array.sort (fun x y -> Int.compare x.id y.id) a
let order_stable (a : seg array) = Array.stable_sort (fun x y -> Float.compare x.start y.start) a

let compare_seg x y =
  match Float.compare x.start y.start with 0 -> Int.compare x.id y.id | c -> c

let named (a : seg array) = Array.sort compare_seg a
