(* Fixture: RJL004 violations silenced by suppressions. *)

(* rejlint: allow global-mutable *)
let hits = ref 0

let cache = Array.make 16 0. (* rejlint: allow global-mutable *)
