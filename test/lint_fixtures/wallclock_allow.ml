(* Fixture: suppression comments silence RJL007 line by line. *)

(* rejlint: allow wall-clock *)
let cpu () = Sys.time ()

let wall () = Unix.gettimeofday () (* rejlint: allow RJL007 *)
let posix () = Unix.time () (* rejlint: allow all *)
