(* Fixture: a suppression that silences nothing — RJL009 flags it as a
   warning so dead allow-comments don't outlive the code they excused. *)

let identity x = x (* rejlint: allow nondet-source *)
