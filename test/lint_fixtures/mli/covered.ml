let answer = 42
