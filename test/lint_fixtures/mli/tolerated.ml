(* rejlint: allow missing-mli *)

let answer = 42
