(* Fixture: a lib/-scoped module without a .mli fires RJL006 when its
   directory is scanned. *)

let answer = 42
