val answer : int
