(* Fixture: immutable toplevel values and function-local mutation must
   NOT fire RJL004. *)

let limit = 42
let name = "policy"
let weights = [ 0.5; 0.25; 0.25 ]

let count xs =
  let c = ref 0 in
  List.iter (fun _ -> incr c) xs;
  !c

let histogram xs =
  let buckets = Array.make 10 0 in
  List.iter (fun x -> buckets.(x mod 10) <- buckets.(x mod 10) + 1) xs;
  buckets
