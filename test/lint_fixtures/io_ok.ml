(* Fixture: string building, buffer writes, and writes to a channel the
   caller chose must NOT fire RJL005 — only the std channels are the
   console. *)

let render n = Printf.sprintf "n=%d" n
let to_buf buf s = Buffer.add_string buf s
let pp ppf n = Format.fprintf ppf "n=%d" n
let log oc s = Printf.fprintf oc "%s\n" s
let save oc s = output_string oc s
