(* Fixture: string building and buffer writes must NOT fire RJL005. *)

let render n = Printf.sprintf "n=%d" n
let to_buf buf s = Buffer.add_string buf s
let pp ppf n = Format.fprintf ppf "n=%d" n
