(* Fuzzer harness tests: deterministic reports, pool-width independence,
   and the failure shrinker (exercised through a synthetic always-failing
   registry entry — the real policies are expected to stay clean). *)

open Sched_model
module Fuzz = Sched_fuzz.Fuzz
module P = Sched_experiments.Policy_registry
module Pool = Sched_stats.Pool
module Oracle = Sched_check.Oracle

let run ?(domains = 1) cfg = Pool.with_pool ~domains (fun pool -> Fuzz.run ~pool cfg)

let test_deterministic () =
  let cfg = Fuzz.config ~budget:24 ~seed:5 () in
  let r1 = run cfg and r2 = run cfg in
  Alcotest.(check string) "same seed, same report" (Fuzz.report_to_string r1)
    (Fuzz.report_to_string r2);
  Alcotest.(check int) "budget honoured" 24 r1.Fuzz.evaluated;
  Alcotest.(check bool) "coverage observed" true (r1.Fuzz.coverage > 0);
  if r1.Fuzz.failures <> [] then
    Alcotest.failf "registry policies failed fuzzing:\n%s" (Fuzz.report_to_string r1)

let test_width_independent () =
  let cfg = Fuzz.config ~budget:24 ~seed:5 () in
  let r1 = run ~domains:1 cfg and r4 = run ~domains:4 cfg in
  Alcotest.(check string) "widths 1 and 4 byte-identical" (Fuzz.report_to_string r1)
    (Fuzz.report_to_string r4)

(* A registry entry that cannot satisfy its budget: the oracle property
   fails on every instance, so the shrinker must walk all the way down to
   a single job on a single machine. *)
let impossible_entry () =
  match P.find "greedy-spt" with
  | Some e ->
      {
        e with
        P.name = "impossible-budget";
        budget = Some (Oracle.Count_fraction (-1.));
        reference = None;
      }
  | None -> Alcotest.fail "greedy-spt not registered"

let test_property_fails () =
  let inst = Test_util.random_instance ~seed:2 ~n:12 ~m:2 () in
  (match P.find "greedy-spt" with
  | Some e ->
      List.iter
        (fun prop ->
          match Fuzz.property_fails e prop inst with
          | None -> ()
          | Some d -> Alcotest.failf "greedy-spt fails %s: %s" prop d)
        [ "oracle"; "permute"; "relabel"; "scale" ]
  | None -> Alcotest.fail "greedy-spt not registered");
  match Fuzz.property_fails (impossible_entry ()) "oracle" inst with
  | Some _ -> ()
  | None -> Alcotest.fail "impossible budget did not fail"

let test_shrinker () =
  let cfg = Fuzz.config ~budget:2 ~policies:[ impossible_entry () ] ~seed:1 () in
  let r = run cfg in
  Alcotest.(check bool) "failures collected" true (r.Fuzz.failures <> []);
  List.iter
    (fun (f : Fuzz.failure) ->
      (* The budget is checked by the plain oracle pass and again inside the
         relabel equivalence, so both properties report it. *)
      Alcotest.(check bool)
        ("budget-bearing property: " ^ f.Fuzz.prop)
        true
        (List.mem f.Fuzz.prop [ "oracle"; "relabel" ]);
      Alcotest.(check int) "shrunk to one job" 1 (Instance.n f.Fuzz.shrunk);
      (* Relabeling is vacuous on a single machine, so its minimal
         counterexample keeps two. *)
      Alcotest.(check int) "shrunk machine count"
        (if f.Fuzz.prop = "relabel" then 2 else 1)
        (Instance.m f.Fuzz.shrunk);
      (* Every failure ships flight-recorder forensics of the shrunk
         repro: the last decisions as schema-tagged trace/2 NDJSON. *)
      Alcotest.(check bool)
        ("forensics captured: " ^ f.Fuzz.prop)
        true
        (Test_util.contains f.Fuzz.forensics "\"schema\":\"rejsched.trace/2\"");
      Alcotest.(check bool) "forensics carry the dispatch provenance" true
        (Test_util.contains f.Fuzz.forensics "\"event\":\"dispatch\"");
      (* The shrunk repro must still fail the property it was shrunk for. *)
      match Fuzz.property_fails (impossible_entry ()) f.Fuzz.prop f.Fuzz.shrunk with
      | Some _ -> ()
      | None -> Alcotest.fail "shrunk instance no longer fails")
    r.Fuzz.failures

let test_telemetry () =
  let reg = Sched_obs.Registry.create () in
  let cfg = Fuzz.config ~budget:6 ~seed:3 () in
  let _ = Pool.with_pool ~domains:1 (fun pool -> Fuzz.run ~registry:reg ~pool cfg) in
  match Sched_obs.Registry.find reg ~name:"sched_check_schedules_total" ~labels:[] with
  | Some { Sched_obs.Registry.instrument = Sched_obs.Registry.Counter c; _ } ->
      Alcotest.(check bool) "audits recorded" true (Sched_obs.Metric.Counter.value c > 0.)
  | _ -> Alcotest.fail "fuzz run recorded no telemetry"

let suite =
  [
    Alcotest.test_case "deterministic reports" `Quick test_deterministic;
    Alcotest.test_case "pool-width independence" `Quick test_width_independent;
    Alcotest.test_case "property_fails probes" `Quick test_property_fails;
    Alcotest.test_case "shrinker reaches minimum" `Quick test_shrinker;
    Alcotest.test_case "telemetry counters" `Quick test_telemetry;
  ]
