open Sched_stats

let test_summary_known () =
  let s = Summary.of_list [ 1.; 2.; 3.; 4.; 5. ] in
  Alcotest.(check int) "count" 5 s.Summary.count;
  Alcotest.(check (float 1e-9)) "mean" 3. s.Summary.mean;
  Alcotest.(check (float 1e-9)) "min" 1. s.Summary.min;
  Alcotest.(check (float 1e-9)) "max" 5. s.Summary.max;
  Alcotest.(check (float 1e-9)) "p50" 3. s.Summary.p50;
  Alcotest.(check (float 1e-9)) "total" 15. s.Summary.total;
  Alcotest.(check (float 1e-9)) "stddev" (sqrt 2.5) s.Summary.stddev

let test_summary_single () =
  let s = Summary.of_list [ 7. ] in
  Alcotest.(check (float 1e-9)) "p90 single" 7. s.Summary.p90;
  Alcotest.(check (float 1e-9)) "stddev single" 0. s.Summary.stddev

let test_summary_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Summary.of_array: empty") (fun () ->
      ignore (Summary.of_array [||]))

let test_percentile_interpolation () =
  let sorted = [| 0.; 10. |] in
  Alcotest.(check (float 1e-9)) "p50 interp" 5. (Summary.percentile sorted 0.5);
  Alcotest.(check (float 1e-9)) "p0" 0. (Summary.percentile sorted 0.);
  Alcotest.(check (float 1e-9)) "p100" 10. (Summary.percentile sorted 1.)

let test_geometric_mean () =
  Alcotest.(check (float 1e-9)) "gm" 2. (Summary.geometric_mean [ 1.; 4. ]);
  Alcotest.(check (float 1e-9)) "gm3" 3. (Summary.geometric_mean [ 3.; 3.; 3. ])

let test_table_render () =
  let t = Table.create ~title:"demo" ~columns:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1.5" ];
  Table.add_row t [ "b"; "22" ];
  let out = Table.render t in
  Alcotest.(check bool) "has title" true
    (String.length out > 0 && String.sub out 0 8 = "== demo ");
  (* Numeric column right-aligned: "22" should be preceded by a space
     aligning with "1.5" width. *)
  Alcotest.(check bool) "contains rows" true
    (Test_util.contains out "alpha" && Test_util.contains out "22")

let test_table_row_mismatch () =
  let t = Table.create ~title:"t" ~columns:[ "a"; "b" ] in
  Alcotest.(check bool) "raises" true
    (try
       Table.add_row t [ "only-one" ];
       false
     with Invalid_argument _ -> true)

let test_table_csv () =
  let t = Table.create ~title:"t" ~columns:[ "a"; "b" ] in
  Table.add_row t [ "x,y"; "plain" ];
  let csv = Table.to_csv t in
  Alcotest.(check string) "csv" "a,b\n\"x,y\",plain\n" csv

let test_cell_float () =
  Alcotest.(check string) "nan" "nan" (Table.cell_float Float.nan);
  Alcotest.(check string) "simple" "1.5" (Table.cell_float 1.5);
  Alcotest.(check string) "big int" "12345" (Table.cell_float 12345.)

let test_rows_order () =
  let t = Table.create ~title:"t" ~columns:[ "a" ] in
  Table.add_rows t [ [ "1" ]; [ "2" ]; [ "3" ] ];
  Alcotest.(check (list (list string))) "insertion order" [ [ "1" ]; [ "2" ]; [ "3" ] ]
    (Table.rows t)

let suite =
  [
    Alcotest.test_case "summary known values" `Quick test_summary_known;
    Alcotest.test_case "summary single" `Quick test_summary_single;
    Alcotest.test_case "summary empty" `Quick test_summary_empty;
    Alcotest.test_case "percentile interpolation" `Quick test_percentile_interpolation;
    Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table row mismatch" `Quick test_table_row_mismatch;
    Alcotest.test_case "table csv quoting" `Quick test_table_csv;
    Alcotest.test_case "cell float formats" `Quick test_cell_float;
    Alcotest.test_case "rows order" `Quick test_rows_order;
  ]

let test_histogram_counts () =
  let h = Histogram.create ~bins:2 [| 0.; 1.; 2.; 3.; 4. |] in
  match Histogram.counts h with
  | [ (lo1, _, c1); (_, hi2, c2) ] ->
      Alcotest.(check (float 1e-9)) "first lo" 0. lo1;
      Alcotest.(check (float 1e-9)) "last hi" 4. hi2;
      Alcotest.(check int) "total count" 5 (c1 + c2)
  | _ -> Alcotest.fail "two bins"

let test_histogram_render () =
  let h = Histogram.create [| 1.; 1.; 5. |] in
  let out = Histogram.render ~width:20 h in
  Alcotest.(check bool) "has bars" true (Test_util.contains out "#")

let test_histogram_log_bins () =
  let h = Histogram.log_bins ~bins:3 [| 1.; 10.; 100.; 1000. |] in
  let total = List.fold_left (fun acc (_, _, c) -> acc + c) 0 (Histogram.counts h) in
  Alcotest.(check int) "all values binned" 4 total;
  Alcotest.(check bool) "rejects non-positive" true
    (try ignore (Histogram.log_bins [| 0.; 1. |]); false with Invalid_argument _ -> true)

let test_queueing_formulas () =
  (* M/M/1 via the general M/G/1 form. *)
  let es, es2 = Queueing.moments_exponential ~mean:2. in
  let general = Queueing.mg1_mean_flow ~lambda:0.25 ~es ~es2 in
  let special = Queueing.mm1_mean_flow ~lambda:0.25 ~mu:0.5 in
  Alcotest.(check (float 1e-9)) "M/M/1 consistency" special general;
  (* Deterministic service halves the waiting of exponential. *)
  let wait_exp = Queueing.mg1_mean_wait ~lambda:0.25 ~es:2. ~es2:8. in
  let wait_det = Queueing.mg1_mean_wait ~lambda:0.25 ~es:2. ~es2:4. in
  Alcotest.(check (float 1e-9)) "P-K variance effect" (wait_exp /. 2.) wait_det;
  Alcotest.(check bool) "unstable rejected" true
    (try ignore (Queueing.mg1_mean_wait ~lambda:1. ~es:2. ~es2:4.); false
     with Invalid_argument _ -> true)

let test_moments () =
  let es, es2 = Queueing.moments_uniform ~lo:0. ~hi:6. in
  Alcotest.(check (float 1e-9)) "uniform mean" 3. es;
  Alcotest.(check (float 1e-9)) "uniform second moment" 12. es2;
  let es, es2 = Queueing.moments_bimodal ~lo:1. ~hi:3. ~p_hi:0.5 in
  Alcotest.(check (float 1e-9)) "bimodal mean" 2. es;
  Alcotest.(check (float 1e-9)) "bimodal second moment" 5. es2

let suite =
  suite
  @ [
      Alcotest.test_case "histogram counts" `Quick test_histogram_counts;
      Alcotest.test_case "histogram render" `Quick test_histogram_render;
      Alcotest.test_case "histogram log bins" `Quick test_histogram_log_bins;
      Alcotest.test_case "queueing formulas" `Quick test_queueing_formulas;
      Alcotest.test_case "queueing moments" `Quick test_moments;
    ]

let test_chart_renders () =
  let series =
    [
      { Sched_stats.Chart.label = "a"; points = [ (1., 2.); (2., 8.); (4., 64.) ] };
      { Sched_stats.Chart.label = "b"; points = [ (1., 1.); (4., 1.) ] };
    ]
  in
  let out =
    Sched_stats.Chart.render ~log_y:true ~title:"t" ~x_label:"x" ~y_label:"y" series
  in
  Alcotest.(check bool) "svg" true (Test_util.contains out "<svg" && Test_util.contains out "</svg>");
  Alcotest.(check bool) "legend" true (Test_util.contains out ">a<" || Test_util.contains out ">a</text>");
  Alcotest.(check bool) "paths" true (Test_util.contains out "<path")

let test_chart_empty () =
  let out = Sched_stats.Chart.render ~title:"t" ~x_label:"x" ~y_label:"y" [] in
  Alcotest.(check bool) "no data note" true (Test_util.contains out "no data")

let test_chart_log_drops_nonpositive () =
  let series = [ { Sched_stats.Chart.label = "a"; points = [ (1., 0.); (2., -3.) ] } ] in
  let out = Sched_stats.Chart.render ~log_y:true ~title:"t" ~x_label:"x" ~y_label:"y" series in
  Alcotest.(check bool) "degenerates to no data" true (Test_util.contains out "no data")

let test_chart_of_table () =
  let t = Table.create ~title:"fig" ~columns:[ "L"; "ratio"; "note" ] in
  Table.add_row t [ "4"; "1.5"; "x" ];
  Table.add_row t [ "8"; "3.0"; "y" ];
  match Sched_stats.Chart.of_table ~x:"L" t with
  | [ s ] ->
      Alcotest.(check string) "series label" "ratio" s.Sched_stats.Chart.label;
      Alcotest.(check int) "two points" 2 (List.length s.Sched_stats.Chart.points)
  | other -> Alcotest.failf "expected one numeric series, got %d" (List.length other)

let test_chart_of_table_non_numeric_x () =
  let t = Table.create ~title:"fig" ~columns:[ "name"; "v" ] in
  Table.add_row t [ "a"; "1" ];
  Alcotest.(check int) "no series" 0 (List.length (Sched_stats.Chart.of_table ~x:"name" t))

let suite =
  suite
  @ [
      Alcotest.test_case "chart renders" `Quick test_chart_renders;
      Alcotest.test_case "chart empty" `Quick test_chart_empty;
      Alcotest.test_case "chart log drops nonpositive" `Quick test_chart_log_drops_nonpositive;
      Alcotest.test_case "chart of_table" `Quick test_chart_of_table;
      Alcotest.test_case "chart of_table non-numeric x" `Quick test_chart_of_table_non_numeric_x;
    ]
