open Sched_model
module FE = Rejection.Flow_energy_reject

let run ?(eps = 0.25) ?gamma inst =
  let cfg = FE.config ?gamma ~eps () in
  let s, st = FE.run cfg inst in
  Schedule.assert_valid ~check_deadlines:false s;
  (s, st)

let test_single_job_speed () =
  (* One job of weight w on an idle machine: execution speed must be
     gamma * w^(1/alpha). *)
  let inst = Test_util.weighted_instance ~alpha:3. [ (0., 8., [| 4. |]) ] in
  let gamma = 0.7 in
  let s, _ = run ~gamma inst in
  match Schedule.outcome s 0 with
  | Outcome.Completed c ->
      Alcotest.(check (float 1e-9)) "speed" (gamma *. (8. ** (1. /. 3.))) c.Outcome.speed
  | Outcome.Rejected _ -> Alcotest.fail "should complete"

let test_speed_grows_with_queue () =
  (* Job 0 occupies the machine while jobs 1 and 2 queue up; when job 0
     finishes, the next start sees pending weight 2 (speed sqrt 2 at
     gamma = 1, alpha = 2) and the final start sees weight 1 (speed 1). *)
  let inst =
    Test_util.weighted_instance ~alpha:2.
      [ (0., 1., [| 2. |]); (0.5, 1., [| 2. |]); (0.6, 1., [| 2. |]) ]
  in
  let s, _ = run ~gamma:1. inst in
  let speeds =
    List.filter_map
      (fun id ->
        match Schedule.outcome s id with
        | Outcome.Completed c -> Some (c.Outcome.start, c.Outcome.speed)
        | Outcome.Rejected _ -> None)
      [ 1; 2 ]
    |> List.sort (fun (a1, s1) (a2, s2) ->
           match Float.compare a1 a2 with 0 -> Float.compare s1 s2 | c -> c)
  in
  match speeds with
  | [ (_, s1); (_, s2) ] ->
      Alcotest.(check (float 1e-9)) "first queued start sees weight 2" (sqrt 2.) s1;
      Alcotest.(check (float 1e-9)) "second queued start sees weight 1" 1. s2
  | _ -> Alcotest.fail "expected two completions"

let test_hdf_order () =
  (* Jobs 1 and 2 queue behind job 0; the denser (heavier) one is served
     first when the machine frees up. *)
  let inst =
    Test_util.weighted_instance ~alpha:3.
      [ (0., 1., [| 1. |]); (0.1, 1., [| 10. |]); (0.2, 10., [| 10. |]) ]
  in
  let s, _ = run ~gamma:1. inst in
  let start id =
    match Schedule.outcome s id with
    | Outcome.Completed c -> c.Outcome.start
    | Outcome.Rejected _ -> Float.nan
  in
  Alcotest.(check bool) "denser job first" true (start 2 < start 1)

let test_weighted_rejection_rule () =
  (* eps = 0.5: running job of weight 1 is rejected once dispatched weight
     during its run exceeds 1/0.5 = 2. *)
  let inst =
    Test_util.weighted_instance ~alpha:3.
      [ (0., 1., [| 1000. |]); (0.1, 1.5, [| 1. |]); (0.2, 1.5, [| 1. |]) ]
  in
  let s, st = run ~eps:0.5 ~gamma:1. inst in
  Alcotest.(check int) "one rejection" 1 (FE.rejections st);
  match Schedule.outcome s 0 with
  | Outcome.Rejected r -> Alcotest.(check (float 1e-9)) "rejected at 0.2" 0.2 r.Outcome.time
  | Outcome.Completed _ -> Alcotest.fail "heavy-volume job should be rejected"

let test_weight_budget_property () =
  QCheck.Test.make ~name:"rejected weight <= eps * total weight (Theorem 2)" ~count:30
    QCheck.(pair (int_bound 1000) (float_range 0.1 0.8))
    (fun (seed, eps) ->
      let gen = Sched_workload.Suite.weighted_energy ~n:60 ~m:2 ~alpha:3. in
      let inst = Sched_workload.Gen.instance gen ~seed in
      let s, _ = run ~eps inst in
      (Metrics.rejection s).Metrics.weight_fraction <= eps +. 1e-9)
  |> QCheck_alcotest.to_alcotest

let test_schedules_valid_property () =
  QCheck.Test.make ~name:"flow-energy schedules always validate" ~count:30
    QCheck.(pair (int_bound 1000) (float_range 1.6 3.5))
    (fun (seed, alpha) ->
      let gen = Sched_workload.Suite.weighted_energy ~n:50 ~m:3 ~alpha in
      let inst = Sched_workload.Gen.instance gen ~seed in
      let s, _ = run inst in
      match Schedule.validate ~check_deadlines:false s with Ok () -> true | Error _ -> false)
  |> QCheck_alcotest.to_alcotest

let test_objective_vs_lb_property () =
  QCheck.Test.make ~name:"flow+energy within Theorem 2 bound of per-job LB" ~count:20
    QCheck.(int_bound 1000)
    (fun seed ->
      let eps = 0.25 and alpha = 3. in
      let gen = Sched_workload.Suite.weighted_energy ~n:50 ~m:2 ~alpha in
      let inst = Sched_workload.Gen.instance gen ~seed in
      let s, _ = run ~eps inst in
      let obj = (Metrics.flow s).Metrics.weighted_with_rejected +. Metrics.energy s in
      let lb = Sched_energy.Energy_bounds.flow_energy_lb inst in
      obj <= (Rejection.Bounds.flow_energy_competitive ~eps ~alpha *. lb) +. 1e-6)
  |> QCheck_alcotest.to_alcotest

let test_gamma_default_used () =
  let inst = Test_util.weighted_instance ~alpha:3. [ (0., 1., [| 1. |]) ] in
  let _, st = run ~eps:0.3 inst in
  let expected = Rejection.Bounds.gamma_best ~eps:0.3 ~alpha:3. in
  Alcotest.(check (float 1e-12)) "default gamma" expected (FE.gamma_of_machine st 0)

let test_lambdas_positive () =
  let gen = Sched_workload.Suite.weighted_energy ~n:40 ~m:2 ~alpha:2. in
  let inst = Sched_workload.Gen.instance gen ~seed:5 in
  let _, st = run inst in
  Array.iter (fun l -> Alcotest.(check bool) "positive" true (l > 0.)) (FE.lambdas st)

let suite =
  [
    Alcotest.test_case "single job speed" `Quick test_single_job_speed;
    Alcotest.test_case "speed follows pending weight" `Quick test_speed_grows_with_queue;
    Alcotest.test_case "highest density first" `Quick test_hdf_order;
    Alcotest.test_case "weighted rejection rule" `Quick test_weighted_rejection_rule;
    test_weight_budget_property ();
    test_schedules_valid_property ();
    test_objective_vs_lb_property ();
    Alcotest.test_case "default gamma" `Quick test_gamma_default_used;
    Alcotest.test_case "lambdas positive" `Quick test_lambdas_positive;
  ]

let test_speed_formula_invariant () =
  (* Replay the trace: at every Start, the recorded speed must equal
     gamma * (total weight of jobs dispatched-but-not-settled)^(1/alpha). *)
  let alpha = 3. in
  let gen = Sched_workload.Suite.weighted_energy ~n:60 ~m:2 ~alpha in
  let inst = Sched_workload.Gen.instance gen ~seed:21 in
  let trace = Sched_sim.Trace.create () in
  let _, st = FE.run ~trace (FE.config ~eps:0.25 ()) inst in
  let open Sched_sim in
  let alive = Array.make 2 [] in
  List.iter
    (fun (e : Trace.entry) ->
      match e.Trace.event with
      | Trace.Dispatch { job; machine } -> alive.(machine) <- job :: alive.(machine)
      | Trace.Complete { job; machine } | Trace.Reject { job; machine; _ } ->
          alive.(machine) <- List.filter (fun x -> x <> job) alive.(machine)
      | Trace.Start { job = _; machine; speed } ->
          let w =
            List.fold_left
              (fun acc id -> acc +. (Instance.job inst id).Job.weight)
              0. alive.(machine)
          in
          let expected = FE.gamma_of_machine st machine *. (w ** (1. /. alpha)) in
          Alcotest.(check (float 1e-9)) "speed = gamma W^(1/alpha)" expected speed
      | Trace.Restart _ -> Alcotest.fail "no restarts expected")
    (Trace.events trace)

let test_heterogeneous_alpha () =
  (* Machines with different alphas: per-machine gammas differ and the
     schedule stays valid. *)
  let machines =
    [| Machine.create ~id:0 ~alpha:2. (); Machine.create ~id:1 ~alpha:3. () |]
  in
  let jobs =
    List.init 20 (fun id ->
        Job.create ~id
          ~release:(float_of_int id *. 0.7)
          ~weight:(1. +. float_of_int (id mod 3))
          ~sizes:[| 2. +. float_of_int (id mod 5); 3. |]
          ())
  in
  let inst = Instance.create ~machines ~jobs () in
  let s, st = FE.run (FE.config ~eps:0.25 ()) inst in
  Schedule.assert_valid ~check_deadlines:false s;
  Alcotest.(check bool) "gammas differ across alphas" true
    (FE.gamma_of_machine st 0 <> FE.gamma_of_machine st 1)

let suite =
  suite
  @ [
      Alcotest.test_case "speed formula invariant (trace replay)" `Quick
        test_speed_formula_invariant;
      Alcotest.test_case "heterogeneous alpha" `Quick test_heterogeneous_alpha;
    ]
