open Sched_model
module AF = Sched_workload.Adversary_flow
module AE = Sched_workload.Adversary_energy

let test_flow_construction_shape () =
  let r = AF.build ~eps:0.2 ~l:8. ~observed_start:0. in
  Alcotest.(check int) "big jobs" 5 r.AF.big_count;
  Alcotest.(check int) "small jobs" 64 r.AF.small_count;
  Alcotest.(check (float 1e-9)) "delta" 64. r.AF.delta;
  Alcotest.(check int) "instance size" 69 (Instance.n r.AF.instance);
  Alcotest.(check int) "single machine" 1 (Instance.m r.AF.instance);
  (* Adversary cost: 64 small flows of 1/8 each = 8, plus big jobs from
     t0 + L + 1/L = 8.125: completions 16.125, 24.125, ..., 48.125. *)
  let expected_big = (5. *. 8.125) +. (8. *. (1. +. 2. +. 3. +. 4. +. 5.)) in
  Alcotest.(check (float 1e-6)) "adversary cost" (8. +. expected_big) r.AF.adversary_cost

let test_flow_probe () =
  let probe = AF.big_jobs_only ~eps:0.25 ~l:4. in
  Alcotest.(check int) "probe has only big jobs" 4 (Instance.n probe);
  let run inst =
    Sched_sim.Driver.run_schedule
      (Sched_baselines.Immediate_reject.policy ~eps:0.25 Sched_baselines.Immediate_reject.Never)
      inst
  in
  Alcotest.(check (float 1e-9)) "non-idling starts at 0" 0. (AF.first_big_start (run probe))

let test_flow_game_ratio_ordering () =
  (* The immediate policy must fare worse than the paper's algorithm on the
     adversarial instance. *)
  let eps = 0.2 and l = 16. in
  let run_imm i =
    Sched_sim.Driver.run_schedule
      (Sched_baselines.Immediate_reject.policy ~eps Sched_baselines.Immediate_reject.Never)
      i
  in
  let run_rej i = fst (Rejection.Flow_reject.run (Rejection.Flow_reject.config ~eps ()) i) in
  let res_i, s_i = AF.run_two_phase ~run:run_imm ~eps ~l in
  let res_r, s_r = AF.run_two_phase ~run:run_rej ~eps ~l in
  let ratio res s = Test_util.total_flow s /. res.AF.adversary_cost in
  Alcotest.(check bool) "immediate much worse" true
    (ratio res_i s_i > 4. *. ratio res_r s_r)

let test_flow_blowup_grows () =
  let eps = 0.25 in
  let run i =
    Sched_sim.Driver.run_schedule
      (Sched_baselines.Immediate_reject.policy ~eps Sched_baselines.Immediate_reject.Never)
      i
  in
  let ratio l =
    let res, s = AF.run_two_phase ~run ~eps ~l in
    Test_util.total_flow s /. res.AF.adversary_cost
  in
  Alcotest.(check bool) "ratio grows with delta" true (ratio 32. > 2. *. ratio 8.)

let test_flow_schedules_validate () =
  let eps = 0.2 in
  let run i = fst (Rejection.Flow_reject.run (Rejection.Flow_reject.config ~eps ()) i) in
  let _, s = AF.run_two_phase ~run ~eps ~l:8. in
  Schedule.assert_valid ~check_deadlines:false s

(* --- energy adversary --- *)

let greedy_alg alpha =
  let st = Rejection.Energy_config_greedy.continuous ~alpha () in
  {
    AE.name = "greedy";
    place =
      (fun ~release ~deadline ~volume ->
        Rejection.Energy_config_greedy.continuous_place st ~release ~deadline ~volume);
  }

let test_energy_protocol_shape () =
  let alpha = 4. in
  let r = AE.run ~alpha (greedy_alg alpha) in
  Alcotest.(check bool) "at most ceil(alpha) rounds" true (r.AE.rounds <= 4);
  Alcotest.(check bool) "at least one round" true (r.AE.rounds >= 1);
  (* Spans shrink and nest: r_{k+1} = S_k + 1 > r_k, d_{k+1} = C_k <= d_k. *)
  let rec check = function
    | (a : AE.placed) :: (b :: _ as rest) ->
        Alcotest.(check bool) "releases increase" true (b.AE.release > a.AE.release);
        Alcotest.(check bool) "deadlines shrink" true (b.AE.deadline <= a.AE.deadline +. 1e-9);
        Alcotest.(check bool) "volume is span/3" true
          (Float.abs (b.AE.volume -. ((b.AE.deadline -. b.AE.release) /. 3.)) <= 1e-9);
        check rest
    | _ -> ()
  in
  check r.AE.jobs;
  (* First job per the construction. *)
  match r.AE.jobs with
  | first :: _ ->
      Alcotest.(check (float 1e-9)) "d1" (3. ** 5.) first.AE.deadline;
      Alcotest.(check (float 1e-9)) "p1" ((3. ** 5.) /. 3.) first.AE.volume
  | [] -> Alcotest.fail "no jobs"

let test_energy_adv_cost () =
  let alpha = 3. in
  let r = AE.run ~alpha (greedy_alg alpha) in
  let volumes = List.fold_left (fun acc p -> acc +. p.AE.volume) 0. r.AE.jobs in
  Alcotest.(check (float 1e-9)) "adv energy is total volume" volumes r.AE.adv_energy;
  Alcotest.(check bool) "alg pays at least adv-like energy" true (r.AE.alg_energy > 0.)

let test_energy_ratio_within_alpha_alpha () =
  List.iter
    (fun alpha ->
      let r = AE.run ~alpha (greedy_alg alpha) in
      let ratio = r.AE.alg_energy /. r.AE.adv_energy in
      Alcotest.(check bool)
        (Printf.sprintf "alpha=%g ratio %.3f <= alpha^alpha" alpha ratio)
        true
        (ratio <= (alpha ** alpha) +. 1e-6))
    [ 2.; 3.; 4.; 5. ]

let test_energy_ratio_grows () =
  let ratio alpha =
    let r = AE.run ~alpha (greedy_alg alpha) in
    r.AE.alg_energy /. r.AE.adv_energy
  in
  Alcotest.(check bool) "super growth" true (ratio 6. > 10. *. ratio 3.)

let test_energy_infeasible_alg_rejected () =
  let bad =
    { AE.name = "bad"; place = (fun ~release ~deadline:_ ~volume:_ -> (release -. 5., 1.)) }
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (AE.run ~alpha:3. bad);
       false
     with Invalid_argument _ -> true)

let test_energy_lazy_alg_overlaps () =
  (* An algorithm always running at min speed over the full span maximizes
     overlap; the adversary still measures finite energy. *)
  let lazy_alg =
    {
      AE.name = "full-span";
      place = (fun ~release ~deadline ~volume -> (release, volume /. (deadline -. release)));
    }
  in
  let r = AE.run ~alpha:3. lazy_alg in
  Alcotest.(check bool) "rounds capped" true (r.AE.rounds <= 3);
  Alcotest.(check bool) "positive energy" true (r.AE.alg_energy > 0.)

let suite =
  [
    Alcotest.test_case "flow construction shape" `Quick test_flow_construction_shape;
    Alcotest.test_case "flow probe" `Quick test_flow_probe;
    Alcotest.test_case "flow ratio ordering" `Quick test_flow_game_ratio_ordering;
    Alcotest.test_case "flow blow-up grows" `Quick test_flow_blowup_grows;
    Alcotest.test_case "flow schedules validate" `Quick test_flow_schedules_validate;
    Alcotest.test_case "energy protocol shape" `Quick test_energy_protocol_shape;
    Alcotest.test_case "energy adversary cost" `Quick test_energy_adv_cost;
    Alcotest.test_case "energy ratio within alpha^alpha" `Quick test_energy_ratio_within_alpha_alpha;
    Alcotest.test_case "energy ratio grows" `Quick test_energy_ratio_grows;
    Alcotest.test_case "energy infeasible alg rejected" `Quick test_energy_infeasible_alg_rejected;
    Alcotest.test_case "energy lazy alg overlaps" `Quick test_energy_lazy_alg_overlaps;
  ]
