(* Stats.Parallel: input-ordered results and worker-exception re-raise —
   the contract the experiments and the bench harness lean on. *)

module P = Sched_stats.Parallel

let test_input_order () =
  let a = Array.init 101 (fun i -> i) in
  let expected = Array.map (fun x -> x * x) a in
  List.iter
    (fun domains ->
      let got = P.map_array ~domains (fun x -> x * x) a in
      Alcotest.(check (array int)) (Printf.sprintf "domains=%d" domains) expected got)
    [ 1; 2; 4; 8 ]

let test_uneven_work_still_ordered () =
  (* Vary per-item cost so domains finish out of order. *)
  let a = Array.init 64 (fun i -> i) in
  let f x =
    let spin = if x mod 7 = 0 then 20_000 else 10 in
    let acc = ref 0 in
    for k = 1 to spin do
      acc := (!acc + (x * k)) mod 1_000_003
    done;
    (x, !acc)
  in
  let seq = Array.map f a in
  let par = P.map_array ~domains:4 f a in
  Alcotest.(check bool) "ordered despite uneven work" true (seq = par)

let test_empty_and_singleton () =
  Alcotest.(check (array int)) "empty" [||] (P.map_array ~domains:4 (fun x -> x) [||]);
  Alcotest.(check (array int)) "singleton" [| 9 |] (P.map_array ~domains:4 (fun x -> x * x) [| 3 |])

let test_exception_reraised () =
  List.iter
    (fun domains ->
      Alcotest.check_raises
        (Printf.sprintf "worker failure surfaces (domains=%d)" domains)
        (Failure "boom-37")
        (fun () ->
          ignore
            (P.map_array ~domains
               (fun x -> if x = 37 then failwith "boom-37" else x)
               (Array.init 64 (fun i -> i)))))
    [ 1; 4 ]

let test_map_list () =
  let l = List.init 33 (fun i -> i) in
  Alcotest.(check (list int)) "map_list ordered" (List.map (fun x -> x + 1) l)
    (P.map_list ~domains:4 (fun x -> x + 1) l)

let suite =
  [
    Alcotest.test_case "map_array input order" `Quick test_input_order;
    Alcotest.test_case "ordered under uneven work" `Quick test_uneven_work_still_ordered;
    Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
    Alcotest.test_case "worker exception re-raised" `Quick test_exception_reraised;
    Alcotest.test_case "map_list" `Quick test_map_list;
  ]