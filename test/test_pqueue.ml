open Sched_sim

let test_basic_order () =
  let q = Pqueue.create () in
  Pqueue.push q ~key:3. ~tag:0 "c";
  Pqueue.push q ~key:1. ~tag:0 "a";
  Pqueue.push q ~key:2. ~tag:0 "b";
  let pop () = match Pqueue.pop q with Some (_, _, x) -> x | None -> "?" in
  Alcotest.(check string) "first" "a" (pop ());
  Alcotest.(check string) "second" "b" (pop ());
  Alcotest.(check string) "third" "c" (pop ());
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q)

let test_tag_tiebreak () =
  let q = Pqueue.create () in
  Pqueue.push q ~key:1. ~tag:5 "later";
  Pqueue.push q ~key:1. ~tag:2 "earlier";
  (match Pqueue.pop q with
  | Some (_, tag, x) ->
      Alcotest.(check int) "tag" 2 tag;
      Alcotest.(check string) "payload" "earlier" x
  | None -> Alcotest.fail "empty");
  ()

let test_peek () =
  let q = Pqueue.create () in
  Alcotest.(check bool) "peek empty" true (Pqueue.peek q = None);
  Pqueue.push q ~key:1. ~tag:0 42;
  (match Pqueue.peek q with
  | Some (k, _, v) ->
      Alcotest.(check (float 0.)) "key" 1. k;
      Alcotest.(check int) "value" 42 v
  | None -> Alcotest.fail "peek");
  Alcotest.(check int) "size unchanged" 1 (Pqueue.size q)

let test_clear () =
  let q = Pqueue.create () in
  for i = 1 to 10 do
    Pqueue.push q ~key:(float_of_int i) ~tag:i i
  done;
  Pqueue.clear q;
  Alcotest.(check bool) "cleared" true (Pqueue.is_empty q)

let test_heap_property_random () =
  let prop (pairs : (float * int) list) =
    let q = Pqueue.create () in
    List.iteri (fun i (k, _) -> Pqueue.push q ~key:k ~tag:i ()) pairs;
    let rec drain acc =
      match Pqueue.pop q with None -> List.rev acc | Some (k, t, ()) -> drain ((k, t) :: acc)
    in
    let popped = drain [] in
    let expected =
      List.mapi (fun i (k, _) -> (k, i)) pairs
      |> List.sort (fun (k1, t1) (k2, t2) ->
             match Float.compare k1 k2 with 0 -> Int.compare t1 t2 | c -> c)
    in
    popped = expected
  in
  QCheck.Test.make ~name:"pqueue pops in sorted (key, tag) order" ~count:200
    QCheck.(list (pair (float_range 0. 100.) int))
    prop
  |> QCheck_alcotest.to_alcotest

let test_interleaved_push_pop () =
  let q = Pqueue.create () in
  Pqueue.push q ~key:5. ~tag:0 5;
  Pqueue.push q ~key:1. ~tag:1 1;
  (match Pqueue.pop q with Some (_, _, v) -> Alcotest.(check int) "min" 1 v | None -> Alcotest.fail "x");
  Pqueue.push q ~key:0.5 ~tag:2 0;
  Pqueue.push q ~key:10. ~tag:3 10;
  (match Pqueue.pop q with Some (_, _, v) -> Alcotest.(check int) "new min" 0 v | None -> Alcotest.fail "x");
  (match Pqueue.pop q with Some (_, _, v) -> Alcotest.(check int) "then 5" 5 v | None -> Alcotest.fail "x");
  (match Pqueue.pop q with Some (_, _, v) -> Alcotest.(check int) "then 10" 10 v | None -> Alcotest.fail "x")



(* ------------------------------------------------------------------ *)
(* Pqueue.Indexed: the indexed heap behind the driver's pending sets. *)

module I = Pqueue.Indexed

(* Model: draining pop_min must equal the (key, id)-sorted input. *)
let test_indexed_sorted_model () =
  let prop (keys : int list) =
    let keys = Array.of_list keys in
    let q = I.create ~cmp:compare () in
    Array.iteri (fun id k -> I.add q ~id ~key:k id) keys;
    I.invariant q
    &&
    let rec drain acc =
      match I.pop_min q with
      | None -> List.rev acc
      | Some (id, k, _) -> drain ((k, id) :: acc)
    in
    let popped = drain [] in
    let expected =
      Array.to_list (Array.mapi (fun id k -> (k, id)) keys)
      |> List.sort (fun (k1, i1) (k2, i2) ->
             match Int.compare k1 k2 with 0 -> Int.compare i1 i2 | c -> c)
    in
    popped = expected
  in
  QCheck.Test.make ~name:"indexed pops in sorted (key, id) order" ~count:300
    QCheck.(list small_int)
    prop
  |> QCheck_alcotest.to_alcotest

(* Removing an arbitrary subset of ids (the rejection path) preserves the
   invariant and leaves exactly the survivors, still in order. *)
let test_indexed_arbitrary_removal () =
  let prop (entries : (int * bool) list) =
    let entries = Array.of_list entries in
    let q = I.create ~cmp:compare () in
    Array.iteri (fun id (k, _) -> I.add q ~id ~key:k id) entries;
    let ok = ref true in
    Array.iteri
      (fun id (k, remove) ->
        if remove then begin
          (match I.remove q ~id with
          | Some (k', v) -> if k' <> k || v <> id then ok := false
          | None -> ok := false);
          if not (I.invariant q) then ok := false;
          if I.mem q ~id then ok := false;
          if I.remove q ~id <> None then ok := false
        end)
      entries;
    !ok
    &&
    let rec drain acc =
      match I.pop_min q with
      | None -> List.rev acc
      | Some (id, k, _) -> drain ((k, id) :: acc)
    in
    let survivors =
      Array.to_list entries
      |> List.mapi (fun id (k, remove) -> (k, id, remove))
      |> List.filter_map (fun (k, id, remove) -> if remove then None else Some (k, id))
      |> List.sort (fun (k1, i1) (k2, i2) ->
             match Int.compare k1 k2 with 0 -> Int.compare i1 i2 | c -> c)
    in
    drain [] = survivors
  in
  QCheck.Test.make ~name:"indexed removal of arbitrary ids preserves invariant" ~count:300
    QCheck.(list (pair small_int bool))
    prop
  |> QCheck_alcotest.to_alcotest

(* Mixed op sequences keep the structural invariant at every step. *)
let test_indexed_op_sequence_invariant () =
  let prop (ops : (int * int) list) =
    let q = I.create ~cmp:compare () in
    let next_id = ref 0 in
    let live = Hashtbl.create 16 in
    List.for_all
      (fun (which, k) ->
        (match which mod 3 with
        | 0 | 1 ->
            let id = !next_id in
            incr next_id;
            I.add q ~id ~key:k ();
            Hashtbl.replace live id ()
        | _ -> (
            match I.pop_min q with
            | Some (id, _, ()) -> Hashtbl.remove live id
            | None -> ()));
        I.invariant q && I.size q = Hashtbl.length live)
      ops
  in
  QCheck.Test.make ~name:"indexed invariant holds under mixed op sequences" ~count:300
    QCheck.(list (pair small_int small_int))
    prop
  |> QCheck_alcotest.to_alcotest

let test_indexed_duplicate_id_rejected () =
  let q = I.create ~cmp:compare () in
  I.add q ~id:3 ~key:1 ();
  Alcotest.check_raises "duplicate id"
    (Invalid_argument "Pqueue.Indexed.add: id 3 already present") (fun () ->
      I.add q ~id:3 ~key:2 ());
  Alcotest.check_raises "negative id" (Invalid_argument "Pqueue.Indexed.add: negative id")
    (fun () -> I.add q ~id:(-1) ~key:2 ())

let test_indexed_min_elt_and_iter () =
  let q = I.create ~cmp:compare () in
  Alcotest.(check bool) "empty min" true (I.min_elt q = None);
  List.iter (fun (id, k) -> I.add q ~id ~key:k (10 * id)) [ (0, 5); (1, 2); (2, 9); (3, 2) ];
  (match I.min_elt q with
  | Some (id, k, v) ->
      (* Equal keys 2 at ids 1 and 3: the id breaks the tie. *)
      Alcotest.(check int) "min id" 1 id;
      Alcotest.(check int) "min key" 2 k;
      Alcotest.(check int) "min value" 10 v
  | None -> Alcotest.fail "min_elt");
  Alcotest.(check int) "size" 4 (I.size q);
  let seen = ref 0 in
  I.iter q ~f:(fun _ _ _ -> incr seen);
  Alcotest.(check int) "iter visits all" 4 !seen;
  Alcotest.(check int) "fold counts" 4 (I.fold q ~init:0 ~f:(fun acc _ _ _ -> acc + 1));
  Alcotest.(check int) "to_list length" 4 (List.length (I.to_list q));
  I.clear q;
  Alcotest.(check bool) "cleared" true (I.is_empty q && I.invariant q)

let suite =
  [
    Alcotest.test_case "basic order" `Quick test_basic_order;
    Alcotest.test_case "tag tiebreak" `Quick test_tag_tiebreak;
    Alcotest.test_case "peek" `Quick test_peek;
    Alcotest.test_case "clear" `Quick test_clear;
    test_heap_property_random ();
    Alcotest.test_case "interleaved push/pop" `Quick test_interleaved_push_pop;
    test_indexed_sorted_model ();
    test_indexed_arbitrary_removal ();
    test_indexed_op_sequence_invariant ();
    Alcotest.test_case "indexed id validation" `Quick test_indexed_duplicate_id_rejected;
    Alcotest.test_case "indexed min/iter/clear" `Quick test_indexed_min_elt_and_iter;
  ]
