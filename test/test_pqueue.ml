open Sched_sim

let test_basic_order () =
  let q = Pqueue.create () in
  Pqueue.push q ~key:3. ~tag:0 "c";
  Pqueue.push q ~key:1. ~tag:0 "a";
  Pqueue.push q ~key:2. ~tag:0 "b";
  let pop () = match Pqueue.pop q with Some (_, _, x) -> x | None -> "?" in
  Alcotest.(check string) "first" "a" (pop ());
  Alcotest.(check string) "second" "b" (pop ());
  Alcotest.(check string) "third" "c" (pop ());
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q)

let test_tag_tiebreak () =
  let q = Pqueue.create () in
  Pqueue.push q ~key:1. ~tag:5 "later";
  Pqueue.push q ~key:1. ~tag:2 "earlier";
  (match Pqueue.pop q with
  | Some (_, tag, x) ->
      Alcotest.(check int) "tag" 2 tag;
      Alcotest.(check string) "payload" "earlier" x
  | None -> Alcotest.fail "empty");
  ()

let test_peek () =
  let q = Pqueue.create () in
  Alcotest.(check bool) "peek empty" true (Pqueue.peek q = None);
  Pqueue.push q ~key:1. ~tag:0 42;
  (match Pqueue.peek q with
  | Some (k, _, v) ->
      Alcotest.(check (float 0.)) "key" 1. k;
      Alcotest.(check int) "value" 42 v
  | None -> Alcotest.fail "peek");
  Alcotest.(check int) "size unchanged" 1 (Pqueue.size q)

let test_clear () =
  let q = Pqueue.create () in
  for i = 1 to 10 do
    Pqueue.push q ~key:(float_of_int i) ~tag:i i
  done;
  Pqueue.clear q;
  Alcotest.(check bool) "cleared" true (Pqueue.is_empty q)

let test_heap_property_random () =
  let prop (pairs : (float * int) list) =
    let q = Pqueue.create () in
    List.iteri (fun i (k, _) -> Pqueue.push q ~key:k ~tag:i ()) pairs;
    let rec drain acc =
      match Pqueue.pop q with None -> List.rev acc | Some (k, t, ()) -> drain ((k, t) :: acc)
    in
    let popped = drain [] in
    let expected =
      List.mapi (fun i (k, _) -> (k, i)) pairs
      |> List.sort (fun (k1, t1) (k2, t2) -> compare (k1, t1) (k2, t2))
    in
    popped = expected
  in
  QCheck.Test.make ~name:"pqueue pops in sorted (key, tag) order" ~count:200
    QCheck.(list (pair (float_range 0. 100.) int))
    prop
  |> QCheck_alcotest.to_alcotest

let test_interleaved_push_pop () =
  let q = Pqueue.create () in
  Pqueue.push q ~key:5. ~tag:0 5;
  Pqueue.push q ~key:1. ~tag:1 1;
  (match Pqueue.pop q with Some (_, _, v) -> Alcotest.(check int) "min" 1 v | None -> Alcotest.fail "x");
  Pqueue.push q ~key:0.5 ~tag:2 0;
  Pqueue.push q ~key:10. ~tag:3 10;
  (match Pqueue.pop q with Some (_, _, v) -> Alcotest.(check int) "new min" 0 v | None -> Alcotest.fail "x");
  (match Pqueue.pop q with Some (_, _, v) -> Alcotest.(check int) "then 5" 5 v | None -> Alcotest.fail "x");
  (match Pqueue.pop q with Some (_, _, v) -> Alcotest.(check int) "then 10" 10 v | None -> Alcotest.fail "x")

let suite =
  [
    Alcotest.test_case "basic order" `Quick test_basic_order;
    Alcotest.test_case "tag tiebreak" `Quick test_tag_tiebreak;
    Alcotest.test_case "peek" `Quick test_peek;
    Alcotest.test_case "clear" `Quick test_clear;
    test_heap_property_random ();
    Alcotest.test_case "interleaved push/pop" `Quick test_interleaved_push_pop;
  ]
