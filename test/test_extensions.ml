(* Tests for the extension modules: machine augmentation, discrete speed
   grids, the Gantt renderer, serialization and the Theorem 2 dual
   certificate. *)

open Sched_model
module MA = Sched_baselines.Machine_augmented
module EG = Rejection.Energy_config_greedy

(* --- machine augmentation --- *)

let test_augment_structure () =
  let inst = Test_util.instance ~machines:2 [ (0., [| 2.; 3. |]); (1., [| 4.; 5. |]) ] in
  let aug = MA.augment_instance ~factor:3 inst in
  Alcotest.(check int) "machines tripled" 6 (Instance.m aug);
  Alcotest.(check int) "jobs unchanged" 2 (Instance.n aug);
  let j = Instance.job aug 0 in
  Alcotest.(check (float 0.)) "sizes tiled (copy 1)" 2. (Job.size j 2);
  Alcotest.(check (float 0.)) "sizes tiled (copy 2)" 3. (Job.size j 5)

let test_augment_helps () =
  (* A batch of equal jobs on one machine: with 4 copies they run in
     parallel and total flow drops. *)
  let gen = Sched_workload.Suite.flow_uniform ~n:60 ~m:2 in
  let inst = Sched_workload.Gen.instance gen ~seed:5 in
  let base =
    Sched_sim.Driver.run_schedule Sched_baselines.Greedy_dispatch.spt inst
  in
  let aug = MA.run ~factor:4 inst in
  Alcotest.(check bool) "augmentation reduces flow" true
    (Test_util.total_flow aug <= Test_util.total_flow base +. 1e-9)

let test_augment_factor_one_identity () =
  let gen = Sched_workload.Suite.flow_uniform ~n:40 ~m:2 in
  let inst = Sched_workload.Gen.instance gen ~seed:6 in
  let base = Sched_sim.Driver.run_schedule Sched_baselines.Greedy_dispatch.spt inst in
  let one = MA.run ~factor:1 inst in
  Alcotest.(check (float 1e-9)) "factor 1 is identity" (Test_util.total_flow base)
    (Test_util.total_flow one)

(* --- discrete speed grid for Theorem 3 --- *)

let test_grid_feasible_and_bounded () =
  (* A restricted strategy set can occasionally *help* a greedy (it is not
     optimal), so the honest properties are: the grid run stays feasible
     and within alpha^alpha of the YDS lower bound. *)
  QCheck.Test.make ~name:"speed-grid greedy feasible and within alpha^alpha of YDS" ~count:15
    QCheck.(int_bound 1000)
    (fun seed ->
      let alpha = 3. in
      let gen = Sched_workload.Suite.deadline_energy ~n:15 ~m:1 ~alpha in
      let inst = Sched_workload.Gen.instance gen ~seed in
      let speeds = [| 0.25; 0.5; 1.; 2.; 4. |] in
      let r = EG.run ~speeds inst in
      let yds =
        Sched_energy.Yds.optimal_energy ~alpha (Sched_energy.Yds.of_instance inst ~machine:0)
      in
      (match Schedule.validate ~allow_parallel:true ~check_deadlines:true r.EG.schedule with
      | Ok () -> true
      | Error _ -> false)
      && r.EG.energy >= yds -. 1e-9
      && r.EG.energy <= ((alpha ** alpha) *. yds) +. 1e-6)
  |> QCheck_alcotest.to_alcotest

let test_rich_grid_converges () =
  let gen = Sched_workload.Suite.deadline_energy ~n:15 ~m:1 ~alpha:3. in
  let inst = Sched_workload.Gen.instance gen ~seed:3 in
  let free = (EG.run inst).EG.energy in
  (* A grid containing (almost) every achievable speed p/dur. *)
  let speeds = Array.init 400 (fun i -> 0.02 *. float_of_int (i + 1)) in
  let rich = (EG.run ~speeds inst).EG.energy in
  Alcotest.(check bool)
    (Printf.sprintf "rich grid within 10%% (%.2f vs %.2f)" rich free)
    true
    (rich <= free *. 1.1 +. 1e-9)

let test_grid_schedule_valid () =
  let gen = Sched_workload.Suite.deadline_energy ~n:20 ~m:2 ~alpha:2. in
  let inst = Sched_workload.Gen.instance gen ~seed:9 in
  let r = EG.run ~speeds:[| 0.5; 1.; 2. |] inst in
  Schedule.assert_valid ~allow_parallel:true ~check_deadlines:true r.EG.schedule

(* --- Gantt --- *)

let test_gantt_renders () =
  let inst = Test_util.instance ~machines:2 [ (0., [| 2.; 2. |]); (0., [| 2.; 2. |]) ] in
  let s =
    Sched_sim.Driver.run_schedule Sched_baselines.Greedy_dispatch.spt inst
  in
  let out = Gantt.render ~width:40 s in
  Alcotest.(check bool) "has machine rows" true
    (Test_util.contains out "m0" && Test_util.contains out "m1");
  Alcotest.(check bool) "has legend" true (Test_util.contains out "legend:");
  Alcotest.(check bool) "shows job symbols" true
    (Test_util.contains out "0=j0" && Test_util.contains out "1=j1")

let test_gantt_marks_rejection () =
  let inst = Test_util.instance [ (0., [| 100. |]); (1., [| 1. |]); (2., [| 1. |]) ] in
  let s, _ =
    Rejection.Flow_reject.run (Rejection.Flow_reject.config ~eps:0.5 ~rule2:false ()) inst
  in
  let out = Gantt.render s in
  Alcotest.(check bool) "rejected marked with !" true (Test_util.contains out "0=j0!")

let test_gantt_empty () =
  let inst = Test_util.instance [ (0., [| 1. |]) ] in
  let b = Schedule.builder inst in
  Schedule.set_outcome b 0 (Outcome.Rejected { time = 0.; assigned_to = None; was_running = false });
  let s = Schedule.finalize b in
  Alcotest.(check string) "empty note" "(empty schedule)\n" (Gantt.render s)

let test_gantt_symbols_cycle () =
  Alcotest.(check bool) "distinct early symbols" true (Gantt.symbol 0 <> Gantt.symbol 1);
  Alcotest.(check bool) "cycles" true (Gantt.symbol 0 = Gantt.symbol 62)

(* --- serialization --- *)

let test_roundtrip_simple () =
  let inst =
    Test_util.deadline_instance ~machines:1 ~alpha:2.5 [ (0., 4., [| 2. |]); (1., 6., [| 3. |]) ]
  in
  match Serialize.instance_of_string (Serialize.instance_to_string inst) with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok inst' ->
      Alcotest.(check int) "n" (Instance.n inst) (Instance.n inst');
      Alcotest.(check int) "m" (Instance.m inst) (Instance.m inst');
      Array.iter2
        (fun (a : Job.t) (b : Job.t) ->
          Alcotest.(check int) "id" a.Job.id b.Job.id;
          Alcotest.(check (float 0.)) "release" a.Job.release b.Job.release;
          Alcotest.(check (float 0.)) "weight" a.Job.weight b.Job.weight;
          Alcotest.(check (option (float 0.))) "deadline" a.Job.deadline b.Job.deadline;
          Alcotest.(check (array (float 0.))) "sizes" a.Job.sizes b.Job.sizes)
        (Instance.jobs_by_release inst)
        (Instance.jobs_by_release inst')

let test_roundtrip_infinity_and_name () =
  let machines = Machine.fleet 2 in
  let jobs = [ Job.create ~id:0 ~release:0.5 ~sizes:[| Float.infinity; 1.5 |] () ] in
  let inst = Instance.create ~name:"my test instance" ~machines ~jobs () in
  match Serialize.instance_of_string (Serialize.instance_to_string inst) with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok inst' ->
      Alcotest.(check string) "name with spaces" "my test instance" inst'.Instance.name;
      Alcotest.(check (float 0.)) "infinity survives" Float.infinity
        (Job.size (Instance.job inst' 0) 0)

let test_roundtrip_property () =
  QCheck.Test.make ~name:"serialize round-trips generated instances" ~count:25
    QCheck.(pair (int_bound 10000) (int_range 0 5))
    (fun (seed, which) ->
      let gens = Sched_workload.Suite.all_flow ~n:20 ~m:3 in
      let gen = List.nth gens (which mod List.length gens) in
      let inst = Sched_workload.Gen.instance gen ~seed in
      match Serialize.instance_of_string (Serialize.instance_to_string inst) with
      | Error _ -> false
      | Ok inst' ->
          Instance.n inst = Instance.n inst'
          && Array.for_all2
               (fun (a : Job.t) (b : Job.t) ->
                 a.Job.id = b.Job.id && a.Job.release = b.Job.release
                 && a.Job.weight = b.Job.weight && a.Job.deadline = b.Job.deadline
                 && a.Job.sizes = b.Job.sizes)
               (Instance.jobs_by_release inst)
               (Instance.jobs_by_release inst'))
  |> QCheck_alcotest.to_alcotest

let test_parse_errors () =
  let check_err text =
    match Serialize.instance_of_string text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "should fail: %s" text
  in
  check_err "machine 0 nonsense 3\nmachines 1\njobs 0";
  check_err "machines 2\nmachine 0 1 3\njobs 0";
  (* declared 2, found 1 *)
  check_err "garbage directive here"

let test_file_io () =
  let inst = Test_util.instance [ (0., [| 2. |]) ] in
  let path = Filename.temp_file "rejsched" ".inst" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serialize.save_instance ~path inst;
      match Serialize.load_instance ~path with
      | Ok inst' -> Alcotest.(check int) "n" 1 (Instance.n inst')
      | Error msg -> Alcotest.failf "load failed: %s" msg)

let test_segments_csv () =
  let inst = Test_util.instance [ (0., [| 2. |]) ] in
  let s = Sched_sim.Driver.run_schedule Sched_baselines.Greedy_dispatch.fifo inst in
  let csv = Serialize.segments_to_csv s in
  Alcotest.(check bool) "header" true (Test_util.contains csv "job,machine,start");
  Alcotest.(check bool) "row" true (Test_util.contains csv "0,0,0,2,1,completed")

(* --- Theorem 2 dual certificate --- *)

let certify_energy seed eps alpha =
  let module FE = Rejection.Flow_energy_reject in
  let gen = Sched_workload.Suite.weighted_energy ~n:50 ~m:2 ~alpha in
  let inst = Sched_workload.Gen.instance gen ~seed in
  let trace = Sched_sim.Trace.create () in
  let schedule, st = FE.run ~trace (FE.config ~eps ()) inst in
  let gammas = Array.init 2 (FE.gamma_of_machine st) in
  Sched_lp.Dual_fit_energy.certify ~eps ~gammas ~lambdas:(FE.lambdas st) inst trace schedule

let test_energy_dual_feasible () =
  let r = certify_energy 42 0.25 3. in
  Alcotest.(check bool)
    (Printf.sprintf "min slack %.3e >= -1e-6" r.Sched_lp.Dual_fit_energy.min_constraint_slack)
    true
    (r.Sched_lp.Dual_fit_energy.min_constraint_slack >= -1e-6);
  Alcotest.(check bool) "many constraints" true
    (r.Sched_lp.Dual_fit_energy.constraints_checked > 1000);
  Alcotest.(check bool) "dual positive" true (r.Sched_lp.Dual_fit_energy.dual_objective > 0.)

let test_energy_dual_feasible_property () =
  QCheck.Test.make ~name:"Lemma 6 dual feasibility across seeds/eps/alpha" ~count:10
    QCheck.(triple (int_bound 1000) (float_range 0.15 0.5) (float_range 1.8 3.2))
    (fun (seed, eps, alpha) ->
      let r = certify_energy seed eps alpha in
      r.Sched_lp.Dual_fit_energy.min_constraint_slack >= -1e-6
      && r.Sched_lp.Dual_fit_energy.dual_objective > 0.)
  |> QCheck_alcotest.to_alcotest

let suite =
  [
    Alcotest.test_case "augment structure" `Quick test_augment_structure;
    Alcotest.test_case "augmentation helps" `Quick test_augment_helps;
    Alcotest.test_case "augment factor 1 identity" `Quick test_augment_factor_one_identity;
    test_grid_feasible_and_bounded ();
    Alcotest.test_case "rich grid converges" `Quick test_rich_grid_converges;
    Alcotest.test_case "grid schedule valid" `Quick test_grid_schedule_valid;
    Alcotest.test_case "gantt renders" `Quick test_gantt_renders;
    Alcotest.test_case "gantt marks rejection" `Quick test_gantt_marks_rejection;
    Alcotest.test_case "gantt empty" `Quick test_gantt_empty;
    Alcotest.test_case "gantt symbols" `Quick test_gantt_symbols_cycle;
    Alcotest.test_case "serialize roundtrip" `Quick test_roundtrip_simple;
    Alcotest.test_case "serialize infinity+name" `Quick test_roundtrip_infinity_and_name;
    test_roundtrip_property ();
    Alcotest.test_case "serialize parse errors" `Quick test_parse_errors;
    Alcotest.test_case "serialize file io" `Quick test_file_io;
    Alcotest.test_case "segments csv" `Quick test_segments_csv;
    Alcotest.test_case "thm2 dual feasible" `Quick test_energy_dual_feasible;
    test_energy_dual_feasible_property ();
  ]

(* --- SVG --- *)

let test_svg_renders () =
  let inst = Test_util.instance ~machines:2 [ (0., [| 2.; 2. |]); (0., [| 2.; 2. |]) ] in
  let s = Sched_sim.Driver.run_schedule Sched_baselines.Greedy_dispatch.spt inst in
  let out = Svg.render ~width:400 s in
  Alcotest.(check bool) "svg document" true
    (Test_util.contains out "<svg" && Test_util.contains out "</svg>");
  Alcotest.(check bool) "has job tooltips" true (Test_util.contains out "<title>job 0");
  Alcotest.(check bool) "has machine labels" true (Test_util.contains out ">m1<")

let test_svg_marks_rejection () =
  let inst = Test_util.instance [ (0., [| 100. |]); (1., [| 1. |]); (2., [| 1. |]) ] in
  let s, _ =
    Rejection.Flow_reject.run (Rejection.Flow_reject.config ~eps:0.5 ~rule2:false ()) inst
  in
  let out = Svg.render s in
  Alcotest.(check bool) "rejected segment colored" true (Test_util.contains out "(rejected)")

let test_svg_save () =
  let inst = Test_util.instance [ (0., [| 1. |]) ] in
  let s = Sched_sim.Driver.run_schedule Sched_baselines.Greedy_dispatch.fifo inst in
  let path = Filename.temp_file "rejsched" ".svg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Svg.save ~path s;
      let text = In_channel.with_open_text path In_channel.input_all in
      Alcotest.(check bool) "file has svg" true (Test_util.contains text "<svg"))

(* --- assignment-YDS energy lower bound --- *)

let test_assignment_yds_bound () =
  let gen = Sched_workload.Suite.deadline_energy ~n:8 ~m:2 ~alpha:3. in
  let inst = Sched_workload.Gen.instance gen ~seed:2 in
  match Sched_energy.Energy_bounds.assignment_yds_lb inst with
  | None -> Alcotest.fail "should be computable at n=8"
  | Some lb ->
      let perjob = Sched_energy.Energy_bounds.deadline_energy_lb inst in
      Alcotest.(check bool) "tighter than per-job bound" true (lb >= perjob -. 1e-9);
      let greedy = (Rejection.Energy_config_greedy.run inst).Rejection.Energy_config_greedy.energy in
      Alcotest.(check bool) "still a lower bound" true (lb <= greedy +. 1e-9)

let test_assignment_yds_caps () =
  let gen = Sched_workload.Suite.deadline_energy ~n:20 ~m:2 ~alpha:3. in
  let inst = Sched_workload.Gen.instance gen ~seed:1 in
  Alcotest.(check bool) "None beyond max_n" true
    (Sched_energy.Energy_bounds.assignment_yds_lb ~max_n:10 inst = None)

let test_assignment_yds_single_machine_matches_yds () =
  let gen = Sched_workload.Suite.deadline_energy ~n:8 ~m:1 ~alpha:2. in
  let inst = Sched_workload.Gen.instance gen ~seed:4 in
  let a = Option.get (Sched_energy.Energy_bounds.assignment_yds_lb inst) in
  let y = Option.get (Sched_energy.Energy_bounds.yds_lb inst) in
  Alcotest.(check (float 1e-9)) "equals plain YDS at m=1" y a

let suite =
  suite
  @ [
      Alcotest.test_case "svg renders" `Quick test_svg_renders;
      Alcotest.test_case "svg marks rejection" `Quick test_svg_marks_rejection;
      Alcotest.test_case "svg save" `Quick test_svg_save;
      Alcotest.test_case "assignment-yds bound" `Quick test_assignment_yds_bound;
      Alcotest.test_case "assignment-yds caps" `Quick test_assignment_yds_caps;
      Alcotest.test_case "assignment-yds m=1" `Quick test_assignment_yds_single_machine_matches_yds;
    ]
