open Sched_stats

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" true (Rng.int64 a <> Rng.int64 b)

let test_float_range_unit () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (x >= 0. && x < 1.)
  done

let test_int_range () =
  let rng = Rng.create 9 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 7 in
    Alcotest.(check bool) "in [0,7)" true (x >= 0 && x < 7)
  done

let test_int_covers_all_residues () =
  let rng = Rng.create 3 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Rng.int rng 5) <- true
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all Fun.id seen)

let test_split_independence () =
  let parent = Rng.create 5 in
  let child = Rng.split parent in
  (* Consuming the child must not affect the parent's continuation. *)
  let parent' = Rng.copy parent in
  for _ = 1 to 10 do
    ignore (Rng.int64 child)
  done;
  Alcotest.(check int64) "parent unaffected by child" (Rng.int64 parent') (Rng.int64 parent)

let test_copy () =
  let a = Rng.create 11 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.int64 a) (Rng.int64 b)

let test_exponential_positive () =
  let rng = Rng.create 13 in
  for _ = 1 to 200 do
    Alcotest.(check bool) "positive" true (Rng.exponential rng 2. > 0.)
  done

let test_exponential_mean () =
  let rng = Rng.create 17 in
  let n = 20000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng 0.5
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean ~ 2" true (Float.abs (mean -. 2.) < 0.1)

let test_pareto_scale () =
  let rng = Rng.create 19 in
  for _ = 1 to 200 do
    Alcotest.(check bool) "at least scale" true (Rng.pareto rng ~shape:1.5 ~scale:3. >= 3.)
  done

let test_shuffle_permutation () =
  let rng = Rng.create 23 in
  let a = Array.init 20 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 20 Fun.id) sorted

let test_uniform_mean () =
  let rng = Rng.create 29 in
  let n = 20000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.float_range rng 2. 6.
  done;
  Alcotest.(check bool) "mean ~ 4" true (Float.abs ((!sum /. float_of_int n) -. 4.) < 0.05)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "float in unit interval" `Quick test_float_range_unit;
    Alcotest.test_case "int in range" `Quick test_int_range;
    Alcotest.test_case "int covers residues" `Quick test_int_covers_all_residues;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "copy" `Quick test_copy;
    Alcotest.test_case "exponential positive" `Quick test_exponential_positive;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "pareto scale" `Quick test_pareto_scale;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "uniform mean" `Quick test_uniform_mean;
  ]

let test_parallel_map_matches_sequential () =
  let input = Array.init 50 Fun.id in
  let f x = x * x in
  Alcotest.(check (array int)) "same results"
    (Array.map f input)
    (Parallel.map_array ~domains:4 f input)

let test_parallel_map_order () =
  let l = [ 5; 1; 9; 3 ] in
  Alcotest.(check (list int)) "order preserved" [ 10; 2; 18; 6 ]
    (Parallel.map_list ~domains:3 (fun x -> 2 * x) l)

let test_parallel_exception () =
  Alcotest.(check bool) "worker exception propagates" true
    (try
       ignore (Parallel.map_array ~domains:2 (fun x -> if x = 7 then failwith "boom" else x)
                 (Array.init 16 Fun.id));
       false
     with Failure _ -> true)

let test_parallel_empty_and_single () =
  Alcotest.(check (array int)) "empty" [||] (Parallel.map_array (fun x -> x) [||]);
  Alcotest.(check (list int)) "singleton" [ 4 ] (Parallel.map_list (fun x -> x + 1) [ 3 ])

let suite =
  suite
  @ [
      Alcotest.test_case "parallel map matches sequential" `Quick
        test_parallel_map_matches_sequential;
      Alcotest.test_case "parallel map order" `Quick test_parallel_map_order;
      Alcotest.test_case "parallel exception" `Quick test_parallel_exception;
      Alcotest.test_case "parallel empty/single" `Quick test_parallel_empty_and_single;
    ]
