(* Pool: the persistent work-sharing domain pool.  The properties pinned
   here are the determinism contract the experiments and the bench lean
   on: parallel_map ≡ Array.map for every (size, chunk, domains) choice,
   nested submission is safe and stays on one pool, exceptions surface
   lowest-input-index-first, and shutdown is orderly. *)

module Pool = Sched_stats.Pool

let mix x = ((x * 2654435761) lxor (x lsr 7)) land 0xFFFF

(* --- qcheck: parallel_map ≡ Array.map over random shapes -------------- *)

let qcheck_map_equiv =
  QCheck.Test.make ~count:60 ~name:"parallel_map ≡ Array.map (size/chunk/domains)"
    QCheck.(triple (int_bound 200) (int_range 1 17) (int_range 1 6))
    (fun (n, chunk_size, domains) ->
      let a = Array.init n (fun i -> i) in
      let expected = Array.map mix a in
      Pool.with_pool ~domains (fun pool ->
          Pool.parallel_map ~chunk_size pool mix a = expected))

let qcheck_for_equiv =
  QCheck.Test.make ~count:40 ~name:"parallel_for touches each index once"
    QCheck.(pair (int_bound 150) (int_range 1 5))
    (fun (n, domains) ->
      let hits = Array.make n 0 in
      Pool.with_pool ~domains (fun pool ->
          Pool.parallel_for pool n (fun i -> hits.(i) <- hits.(i) + mix i));
      hits = Array.init n (fun i -> mix i))

(* --- ordering and shapes ---------------------------------------------- *)

let test_map_list () =
  let l = List.init 57 (fun i -> i) in
  Pool.with_pool ~domains:4 (fun pool ->
      Alcotest.(check (list int)) "list ordered" (List.map mix l)
        (Pool.parallel_map_list pool mix l))

let test_empty_singleton () =
  Pool.with_pool ~domains:4 (fun pool ->
      Alcotest.(check (array int)) "empty" [||] (Pool.parallel_map pool mix [||]);
      Alcotest.(check (array int)) "singleton" [| mix 5 |] (Pool.parallel_map pool mix [| 5 |]);
      Pool.parallel_for pool 0 (fun _ -> Alcotest.fail "parallel_for 0 must not call f"))

let test_uneven_work_ordered () =
  let a = Array.init 64 (fun i -> i) in
  let f x =
    let spin = if x mod 7 = 0 then 20_000 else 10 in
    let acc = ref 0 in
    for k = 1 to spin do
      acc := (!acc + (x * k)) mod 1_000_003
    done;
    (x, !acc)
  in
  let seq = Array.map f a in
  Pool.with_pool ~domains:4 (fun pool ->
      Alcotest.(check bool) "ordered despite uneven work" true
        (Pool.parallel_map ~chunk_size:3 pool f a = seq))

(* --- reentrancy: nested regions share one pool ------------------------- *)

let test_nested_submission () =
  let expected =
    Array.init 8 (fun i -> Array.init 16 (fun j -> mix ((i * 16) + j)))
  in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          let got =
            Pool.parallel_map pool
              (fun i ->
                (* Inner region without an explicit pool: must resolve to
                   the ambient pool, i.e. the enclosing one. *)
                Alcotest.(check int)
                  (Printf.sprintf "ambient size inside task (domains=%d)" domains)
                  domains
                  (Pool.size (Pool.ambient ()));
                Sched_stats.Parallel.map_array (fun j -> mix ((i * 16) + j))
                  (Array.init 16 (fun j -> j)))
              (Array.init 8 (fun i -> i))
          in
          Alcotest.(check bool) (Printf.sprintf "nested ≡ sequential (domains=%d)" domains)
            true (got = expected)))
    [ 1; 2; 4 ]

let test_deep_nesting () =
  Pool.with_pool ~domains:3 (fun pool ->
      let got =
        Pool.parallel_map pool
          (fun i ->
            Pool.parallel_map pool
              (fun j -> Array.fold_left ( + ) 0 (Pool.parallel_map pool mix (Array.init 5 (fun k -> i + j + k))))
              (Array.init 4 (fun j -> j)))
          (Array.init 6 (fun i -> i))
      in
      let expected =
        Array.init 6 (fun i ->
            Array.init 4 (fun j ->
                Array.fold_left ( + ) 0 (Array.init 5 (fun k -> mix (i + j + k)))))
      in
      Alcotest.(check bool) "three levels deep" true (got = expected))

(* Nested shard regions, the sharded driver's shape: run_shards from
   inside pool tasks at widths 1/2/4 must complete (no deadlock — the
   submitter helps drain the queue), touch each shard index exactly
   once, and validate its width. *)
let test_nested_shard_regions () =
  List.iter
    (fun domains ->
      List.iter
        (fun shards ->
          Pool.with_pool ~domains (fun pool ->
              let hits = Array.init 6 (fun _ -> Array.make shards 0) in
              Pool.parallel_for pool 6 (fun task ->
                  Pool.run_shards (Pool.ambient ()) ~shards (fun s ->
                      hits.(task).(s) <- hits.(task).(s) + mix ((task * shards) + s)));
              let expected =
                Array.init 6 (fun task -> Array.init shards (fun s -> mix ((task * shards) + s)))
              in
              Alcotest.(check bool)
                (Printf.sprintf "each shard once (domains=%d shards=%d)" domains shards)
                true (hits = expected)))
        [ 1; 2; 4 ])
    [ 1; 2; 4 ]

let test_run_shards_validates_width () =
  Pool.with_pool ~domains:2 (fun pool ->
      List.iter
        (fun shards ->
          match Pool.run_shards pool ~shards (fun _ -> ()) with
          | () -> Alcotest.failf "shards=%d accepted" shards
          | exception Invalid_argument _ -> ())
        [ 0; -1 ])

let test_create_validates_width () =
  List.iter
    (fun domains ->
      match Pool.create ~domains () with
      | pool ->
          Pool.shutdown pool;
          Alcotest.failf "domains=%d accepted" domains
      | exception Invalid_argument _ -> ())
    [ 0; -4 ]

(* --- exception propagation --------------------------------------------- *)

let test_lowest_index_exception () =
  List.iter
    (fun (domains, chunk_size) ->
      Alcotest.check_raises
        (Printf.sprintf "lowest raising index wins (domains=%d chunk=%d)" domains chunk_size)
        (Failure "boom-13")
        (fun () ->
          Pool.with_pool ~domains (fun pool ->
              ignore
                (Pool.parallel_map ~chunk_size pool
                   (fun x -> if x = 13 || x = 37 || x = 59 then failwith (Printf.sprintf "boom-%d" x) else x)
                   (Array.init 64 (fun i -> i))))))
    [ (1, 4); (2, 1); (4, 3); (4, 64) ]

let test_nested_exception_propagates () =
  Alcotest.check_raises "inner region failure surfaces" (Failure "inner-2") (fun () ->
      Pool.with_pool ~domains:4 (fun pool ->
          ignore
            (Pool.parallel_map pool
               (fun i ->
                 Pool.parallel_map pool
                   (fun j -> if i = 2 && j = 2 then failwith "inner-2" else j)
                   (Array.init 4 (fun j -> j)))
               (Array.init 8 (fun i -> i)))))

let test_pool_survives_failure () =
  Pool.with_pool ~domains:2 (fun pool ->
      (try ignore (Pool.parallel_map pool (fun _ -> failwith "x") [| 1; 2; 3 |])
       with Failure _ -> ());
      Alcotest.(check (array int)) "usable after a failed batch" [| mix 0; mix 1 |]
        (Pool.parallel_map pool mix [| 0; 1 |]))

(* --- lifecycle ---------------------------------------------------------- *)

let test_shutdown_semantics () =
  let pool = Pool.create ~domains:3 () in
  Alcotest.(check int) "size" 3 (Pool.size pool);
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* Idempotent. *)
  Alcotest.check_raises "submit after shutdown" (Invalid_argument "Sched_stats.Pool: pool is shut down")
    (fun () -> ignore (Pool.parallel_map pool mix (Array.init 8 (fun i -> i))))

let test_with_pool_returns () =
  Alcotest.(check int) "result" 42 (Pool.with_pool ~domains:2 (fun _ -> 42))

let test_default_pool_resize () =
  let saved = Pool.size (Pool.default ()) in
  Pool.set_default_domains 2;
  Alcotest.(check int) "resized to 2" 2 (Pool.size (Pool.default ()));
  Pool.set_default_domains 3;
  Alcotest.(check int) "resized to 3" 3 (Pool.size (Pool.default ()));
  Alcotest.(check (array int)) "default pool maps" (Array.init 9 (fun i -> mix i))
    (Sched_stats.Parallel.map_array mix (Array.init 9 (fun i -> i)));
  Pool.set_default_domains saved;
  Alcotest.(check int) "restored" saved (Pool.size (Pool.default ()))

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_map_equiv;
    QCheck_alcotest.to_alcotest qcheck_for_equiv;
    Alcotest.test_case "map_list ordered" `Quick test_map_list;
    Alcotest.test_case "empty and singleton" `Quick test_empty_singleton;
    Alcotest.test_case "ordered under uneven work" `Quick test_uneven_work_ordered;
    Alcotest.test_case "nested submission shares the pool" `Quick test_nested_submission;
    Alcotest.test_case "deep nesting" `Quick test_deep_nesting;
    Alcotest.test_case "nested shard regions (widths 1/2/4)" `Quick test_nested_shard_regions;
    Alcotest.test_case "run_shards validates width" `Quick test_run_shards_validates_width;
    Alcotest.test_case "create validates width" `Quick test_create_validates_width;
    Alcotest.test_case "lowest-index exception wins" `Quick test_lowest_index_exception;
    Alcotest.test_case "nested exception propagates" `Quick test_nested_exception_propagates;
    Alcotest.test_case "pool survives a failed batch" `Quick test_pool_survives_failure;
    Alcotest.test_case "shutdown semantics" `Quick test_shutdown_semantics;
    Alcotest.test_case "with_pool returns result" `Quick test_with_pool_returns;
    Alcotest.test_case "default pool resize" `Quick test_default_pool_resize;
  ]
