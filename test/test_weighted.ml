open Sched_model
module FRW = Rejection.Flow_reject_weighted

let run ?(eps = 0.25) ?(rule1 = true) ?(rule2 = true) inst =
  let s, st = FRW.run (FRW.config ~eps ~rule1 ~rule2 ()) inst in
  Schedule.assert_valid ~check_deadlines:false s;
  (s, st)

let test_hdf_service () =
  (* Queued jobs are served by density, not size. *)
  let inst =
    Test_util.weighted_instance
      [ (0., 1., [| 1. |]); (0.1, 1., [| 2. |]); (0.2, 10., [| 5. |]) ]
  in
  let s, _ = run ~rule1:false ~rule2:false inst in
  let start id =
    match Schedule.outcome s id with
    | Outcome.Completed c -> c.Outcome.start
    | Outcome.Rejected _ -> Float.nan
  in
  (* Job 2 has density 2, job 1 density 0.5: job 2 first. *)
  Alcotest.(check bool) "denser first" true (start 2 < start 1)

let test_rule1w_weighted_threshold () =
  (* Running job of weight 4 with eps = 0.5 survives 8 of dispatched
     weight and is rejected beyond. *)
  let inst =
    Test_util.weighted_instance
      [ (0., 4., [| 1000. |]); (1., 5., [| 1. |]); (2., 5., [| 1. |]) ]
  in
  let s, st = run ~eps:0.5 ~rule2:false inst in
  let r1, _ = FRW.rejections st in
  Alcotest.(check int) "one rule-1w rejection" 1 r1;
  match Schedule.outcome s 0 with
  | Outcome.Rejected r -> Alcotest.(check (float 1e-9)) "at second arrival" 2. r.Outcome.time
  | Outcome.Completed _ -> Alcotest.fail "should be rejected (10 > 8)"

let test_rule2w_rejects_largest_volume () =
  (* Rule 2w: accumulated weight >= (1+1/eps) * weight of the
     largest-processing pending job. *)
  let inst =
    Test_util.weighted_instance
      [ (0., 1., [| 1000. |]); (1., 1., [| 50. |]); (2., 2., [| 2. |]) ]
  in
  (* eps=0.5: threshold factor 3. After job 2 arrives c = 4; largest
     pending is job 1 (p=50, w=1): 4 >= 3*1, reject job 1. *)
  let s, st = run ~eps:0.5 ~rule1:false inst in
  let _, r2 = FRW.rejections st in
  Alcotest.(check bool) "rule-2w fired" true (r2 >= 1);
  match Schedule.outcome s 1 with
  | Outcome.Rejected _ -> ()
  | Outcome.Completed _ -> Alcotest.fail "largest pending should be rejected"

let test_weight_budget_property () =
  QCheck.Test.make ~name:"weighted rejections <= 2 eps W" ~count:30
    QCheck.(pair (int_bound 1000) (float_range 0.15 0.8))
    (fun (seed, eps) ->
      let gen =
        Sched_workload.Gen.make
          ~sizes:(Sched_stats.Dist.bounded_pareto ~shape:1.5 ~lo:1. ~hi:50.)
          ~weights:(Sched_stats.Dist.bounded_pareto ~shape:1.8 ~lo:1. ~hi:10.)
          ~n:80 ~m:3 ()
      in
      let inst = Sched_workload.Gen.instance gen ~seed in
      let s, _ = run ~eps inst in
      (Metrics.rejection s).Metrics.weight_fraction <= (2. *. eps) +. 1e-9)
  |> QCheck_alcotest.to_alcotest

let test_valid_schedules_property () =
  QCheck.Test.make ~name:"weighted policy schedules validate" ~count:30
    QCheck.(int_bound 1000)
    (fun seed ->
      let gen = Sched_workload.Suite.weighted_energy ~n:60 ~m:3 ~alpha:3. in
      let inst = Sched_workload.Gen.instance gen ~seed in
      let s, _ = run inst in
      match Schedule.validate ~check_deadlines:false s with Ok () -> true | Error _ -> false)
  |> QCheck_alcotest.to_alcotest

let test_beats_no_rejection_on_heavy_tail () =
  (* With elephants and mice, rejection should reduce weighted flow. *)
  let gen =
    Sched_workload.Gen.make
      ~arrivals:(Sched_workload.Gen.Batched { every = 10.; size = 6 })
      ~sizes:(Sched_stats.Dist.bimodal ~lo:1. ~hi:80. ~p_hi:0.1)
      ~weights:(Sched_stats.Dist.uniform ~lo:1. ~hi:5.)
      ~n:120 ~m:2 ()
  in
  let worse = ref 0 in
  List.iter
    (fun seed ->
      let inst = Sched_workload.Gen.instance gen ~seed in
      let with_r, _ = run ~eps:0.25 inst in
      let without, _ = run ~eps:0.25 ~rule1:false ~rule2:false inst in
      let wf s = (Metrics.flow s).Metrics.weighted_with_rejected in
      if wf with_r > wf without then incr worse)
    [ 1; 2; 3; 4; 5 ];
  Alcotest.(check bool) "rejection helps on most seeds" true (!worse <= 1)

let suite =
  [
    Alcotest.test_case "HDF service order" `Quick test_hdf_service;
    Alcotest.test_case "rule 1w threshold" `Quick test_rule1w_weighted_threshold;
    Alcotest.test_case "rule 2w largest volume" `Quick test_rule2w_rejects_largest_volume;
    test_weight_budget_property ();
    test_valid_schedules_property ();
    Alcotest.test_case "rejection helps heavy tails" `Quick test_beats_no_rejection_on_heavy_tail;
  ]
