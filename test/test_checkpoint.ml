(* Checkpoint/restore layer.

   Two halves: the Snapshot container codec (qcheck round-trip, plus
   every corruption mode must come back as a structured error, never an
   exception and never a silently-wrong payload), and the semantic
   guarantee — suspending a session at *every* feed boundary, wrapping /
   unwrapping / thawing it, and finishing the stream must reproduce the
   uninterrupted run byte-for-byte, oracle-audited on both sides. *)

open Sched_model
open Sched_sim
module P = Sched_experiments.Policy_registry
module Corpus = Sched_fuzz.Corpus

(* --- container codec --------------------------------------------------- *)

let arb_blob =
  (* Arbitrary bytes, including NULs and high bits — the payload is
     marshaled binary, not text. *)
  QCheck.(string_gen_of_size Gen.(int_range 0 512) Gen.(map Char.chr (int_range 0 255)))

let test_roundtrip =
  QCheck.Test.make ~name:"wrap |> unwrap round-trips policy and payload" ~count:200
    QCheck.(pair arb_blob arb_blob)
    (fun (policy, payload) ->
      match Snapshot.unwrap (Snapshot.wrap ~policy ~payload) with
      | Ok (p, q) -> String.equal p policy && String.equal q payload
      | Error _ -> false)
  |> QCheck_alcotest.to_alcotest

let test_bitflip =
  QCheck.Test.make ~name:"any single byte flip is detected" ~count:300
    QCheck.(triple arb_blob small_nat (int_range 1 255))
    (fun (payload, pos, delta) ->
      let snap = Snapshot.wrap ~policy:"flow-reject" ~payload in
      let pos = pos mod String.length snap in
      let bad = Bytes.of_string snap in
      Bytes.set bad pos (Char.chr (Char.code (Bytes.get bad pos) lxor delta));
      match Snapshot.unwrap (Bytes.to_string bad) with
      | Error _ -> true
      | Ok _ -> false)
  |> QCheck_alcotest.to_alcotest

let test_truncation_fails_closed () =
  let snap = Snapshot.wrap ~policy:"greedy-spt" ~payload:"some frozen state bytes" in
  for len = 0 to String.length snap - 1 do
    match Snapshot.unwrap (String.sub snap 0 len) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "prefix of length %d unwrapped successfully" len
  done;
  (match Snapshot.unwrap (snap ^ "x") with
  | Error Snapshot.Truncated -> ()
  | Error e -> Alcotest.failf "trailing garbage: wrong error %s" (Snapshot.error_to_string e)
  | Ok _ -> Alcotest.fail "trailing garbage unwrapped successfully");
  match Snapshot.unwrap "not a snapshot at all" with
  | Error Snapshot.Bad_magic -> ()
  | Error e -> Alcotest.failf "alien file: wrong error %s" (Snapshot.error_to_string e)
  | Ok _ -> Alcotest.fail "alien file unwrapped successfully"

(* --- suspend/resume ---------------------------------------------------- *)

let check_f what a b =
  if not (Float.equal a b) then Alcotest.failf "%s: %.17g <> %.17g" what a b

let compare_live what (lb : Driver.live_metrics) (lf : Driver.live_metrics) =
  let open Metrics in
  check_f (what ^ ": flow.total") lb.Driver.flow.total lf.Driver.flow.total;
  check_f (what ^ ": flow.weighted") lb.Driver.flow.weighted lf.Driver.flow.weighted;
  check_f (what ^ ": energy") lb.Driver.energy lf.Driver.energy;
  check_f (what ^ ": makespan") lb.Driver.makespan lf.Driver.makespan;
  Alcotest.(check int)
    (what ^ ": rejection.count")
    lb.Driver.rejection.count lf.Driver.rejection.count;
  check_f (what ^ ": rejection.weight") lb.Driver.rejection.weight lf.Driver.rejection.weight

(* Run the stream with a freeze -> wrap -> unwrap -> thaw pause after
   [cut] jobs (draining up to the last fed release first, as the serve
   loop does before writing its checkpoint). *)
let resumed_run ~check (e : P.entry) instance ~cut =
  let jobs = Instance.jobs_by_release instance in
  let n = Array.length jobs in
  let s =
    e.P.open_stream ~check ~name:instance.Instance.name
      ~machines:instance.Instance.machines ()
  in
  for i = 0 to cut - 1 do
    s.P.ss_feed jobs.(i)
  done;
  if cut > 0 then s.P.ss_drain_until jobs.(cut - 1).Job.release;
  let wrapped = Snapshot.wrap ~policy:e.P.name ~payload:(s.P.ss_freeze ()) in
  let payload =
    match Snapshot.unwrap wrapped with
    | Ok (name, p) ->
        Alcotest.(check string) "policy name rides the container" e.P.name name;
        p
    | Error err -> Alcotest.failf "unwrap of a fresh snapshot failed: %s" (Snapshot.error_to_string err)
  in
  let r = e.P.restore_stream payload in
  Alcotest.(check int) "fed count survives the thaw" cut (r.P.ss_fed ());
  for i = cut to n - 1 do
    r.P.ss_feed jobs.(i)
  done;
  r.P.ss_close ()

let check_all_boundaries ~what (e : P.entry) instance =
  let check = not (Instance.has_deadlines instance) in
  let sb, lb = e.P.run_impl ~impl:(Driver.default_impl ()) ~check instance in
  let cb = Serialize.schedule_to_canonical_string sb in
  let n = Array.length (Instance.jobs_by_release instance) in
  for cut = 0 to n do
    let what = Printf.sprintf "%s/cut=%d" what cut in
    match resumed_run ~check e instance ~cut with
    | Some sf, lf ->
        let cf = Serialize.schedule_to_canonical_string sf in
        if not (String.equal cb cf) then
          Alcotest.failf "%s: resumed schedule diverges:\n--- batch ---\n%s\n--- resumed ---\n%s"
            what cb cf;
        compare_live what lb lf
    | None, _ -> Alcotest.failf "%s: no schedule from the resumed session" what
  done

(* Stateful policies are where a checkpoint can silently lose decisions:
   flow-reject carries fractional-flow accumulators, immediate-largest a
   rejection budget counter, restart-spt per-job restart marks.  Suspend
   at every boundary of a tie-heavy corpus case and a weighted random
   instance under each. *)
let test_suspend_every_boundary_corpus () =
  List.iter
    (fun (c : Corpus.case) ->
      let e = Option.get (P.find c.Corpus.policy) in
      check_all_boundaries
        ~what:(Printf.sprintf "%s/%s" c.Corpus.name e.P.name)
        e c.Corpus.instance)
    (List.filteri (fun k _ -> k < 2) (Corpus.seeds ()))

let test_suspend_every_boundary_stateful () =
  let instance = Test_util.random_instance ~weighted:true ~seed:5 ~n:14 ~m:3 () in
  List.iter
    (fun name ->
      let e = Option.get (P.find name) in
      check_all_boundaries ~what:(Printf.sprintf "random/%s" name) e instance)
    [ "flow-reject"; "flow-reject-weighted"; "immediate-largest"; "restart-spt" ]

let test_wrong_policy_thaw_rejected () =
  let e = Option.get (P.find "greedy-spt") in
  let other = Option.get (P.find "greedy-fifo") in
  let s = e.P.open_stream ~machines:(Machine.fleet 2) () in
  let payload = s.P.ss_freeze () in
  match other.P.restore_stream payload with
  | _ -> Alcotest.fail "thaw under the wrong policy succeeded"
  | exception Invalid_argument _ -> ()

let suite =
  [
    test_roundtrip;
    test_bitflip;
    Alcotest.test_case "truncation / garbage / alien files fail closed" `Quick
      test_truncation_fails_closed;
    Alcotest.test_case "suspend at every boundary, corpus cases" `Slow
      test_suspend_every_boundary_corpus;
    Alcotest.test_case "suspend at every boundary, stateful policies" `Slow
      test_suspend_every_boundary_stateful;
    Alcotest.test_case "thaw under the wrong policy rejected" `Quick
      test_wrong_policy_thaw_rejected;
  ]
