open Sched_model
module RS = Sched_baselines.Restart_spt

let test_driver_restart_mechanics () =
  (* A policy that restarts the running job once when job 1 arrives. *)
  let policy =
    {
      Sched_sim.Driver.name = "restart-once";
      init = (fun _ -> ());
      on_arrival =
        (fun () view (j : Job.t) ->
          let restart =
            if j.Job.id = 1 then
              match Sched_sim.Driver.running_on view 0 with
              | Some r -> [ r.Sched_sim.Driver.job.Job.id ]
              | None -> []
            else []
          in
          { Sched_sim.Driver.dispatch_to = 0; reject = []; restart });
      select =
        (fun () view i ->
          match Sched_sim.Driver.pending view i with
          | [] -> None
          | first :: rest ->
              (* Shortest first so the freshly requeued long job waits. *)
              let shortest =
                List.fold_left
                  (fun (a : Job.t) (l : Job.t) -> if Job.size l i < Job.size a i then l else a)
                  first rest
              in
              Some { Sched_sim.Driver.job = shortest.Job.id; speed = 1.0 });
    }
  in
  let inst = Test_util.instance [ (0., [| 10. |]); (2., [| 1. |]) ] in
  let trace = Sched_sim.Trace.create () in
  let s = Sched_sim.Driver.run ~trace policy inst |> fst in
  Schedule.assert_valid ~allow_restarts:true s;
  (* Job 0 ran [0,2), was killed, job 1 ran [2,3), job 0 reran [3,13). *)
  (match Schedule.outcome s 0 with
  | Outcome.Completed c ->
      Alcotest.(check (float 1e-9)) "final start" 3. c.Outcome.start;
      Alcotest.(check (float 1e-9)) "final finish" 13. c.Outcome.finish
  | Outcome.Rejected _ -> Alcotest.fail "job 0 must complete");
  Alcotest.(check int) "three segments total" 3 (List.length s.Schedule.segments);
  (* Wasted volume = the 2 units of the aborted attempt. *)
  Alcotest.(check (float 1e-9)) "wasted work" 2. (RS.wasted_work s);
  (* The plain validator must reject this schedule. *)
  Alcotest.(check bool) "strict validation fails" true
    (match Schedule.validate s with Ok () -> false | Error _ -> true);
  (* Trace carries the Restart event. *)
  let wasted =
    List.find_map
      (fun (e : Sched_sim.Trace.entry) ->
        match e.Sched_sim.Trace.event with
        | Sched_sim.Trace.Restart { wasted; _ } -> Some wasted
        | _ -> None)
      (Sched_sim.Trace.events trace)
  in
  Alcotest.(check (option (float 1e-9))) "trace wasted" (Some 2.) wasted

let test_restart_not_running_raises () =
  let policy =
    {
      Sched_sim.Driver.name = "bad-restart";
      init = (fun _ -> ());
      on_arrival =
        (fun () _ (j : Job.t) -> { Sched_sim.Driver.dispatch_to = 0; reject = []; restart = [ j.Job.id ] });
      select = (fun () _ _ -> None);
    }
  in
  let inst = Test_util.instance [ (0., [| 1. |]) ] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Sched_sim.Driver.run_schedule policy inst);
       false
     with Invalid_argument _ -> true)

let test_restart_policy_serves_everything () =
  QCheck.Test.make ~name:"restart policy completes all jobs with valid schedules" ~count:25
    QCheck.(int_bound 1000)
    (fun seed ->
      let gen = Sched_workload.Suite.flow_bimodal ~n:80 ~m:2 in
      let inst = Sched_workload.Gen.instance gen ~seed in
      let s, _ = RS.run (RS.config ()) inst in
      (match Schedule.validate ~allow_restarts:true ~check_deadlines:false s with
      | Ok () -> true
      | Error _ -> false)
      && (Metrics.rejection s).Metrics.count = 0
      && List.length (Schedule.completed_jobs s) = 80)
  |> QCheck_alcotest.to_alcotest

let test_restart_cap_respected () =
  let gen = Sched_workload.Suite.flow_bimodal ~n:120 ~m:2 in
  let inst = Sched_workload.Gen.instance gen ~seed:3 in
  let trace = Sched_sim.Trace.create () in
  let _, st = Sched_sim.Driver.run ~trace (RS.policy (RS.config ~max_restarts:1 ())) inst in
  (* No job may be restarted twice. *)
  let per_job = Hashtbl.create 16 in
  List.iter
    (fun (e : Sched_sim.Trace.entry) ->
      match e.Sched_sim.Trace.event with
      | Sched_sim.Trace.Restart { job; _ } ->
          Hashtbl.replace per_job job (1 + Option.value ~default:0 (Hashtbl.find_opt per_job job))
      | _ -> ())
    (Sched_sim.Trace.events trace);
  Hashtbl.iter (fun _ c -> Alcotest.(check bool) "at most once" true (c <= 1)) per_job;
  Alcotest.(check bool) "some restarts happened" true (RS.restarts st > 0)

let test_restart_helps_on_elephants () =
  (* The scenario the restart rule exists for (the Lemma 1 pattern): an
     elephant grabs an otherwise-idle machine, then mice trickle in.
     Killing the elephant unblocks every mouse; without restarts they all
     wait the full elephant. *)
  (* Mice arrive faster than they are served so the queue never drains and
     the killed elephant cannot sneak back in mid-stream. *)
  let inst =
    Test_util.instance
      ((0., [| 100. |]) :: List.init 30 (fun k -> (1. +. (0.5 *. float_of_int k), [| 1. |])))
  in
  let with_restart, st = RS.run (RS.config ~kill_factor:3. ~max_restarts:1 ()) inst in
  let without, _ = RS.run (RS.config ~kill_factor:1e12 ()) inst in
  Alcotest.(check bool) "the elephant was killed" true (RS.restarts st >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "flow with restarts (%.0f) well below without (%.0f)"
       (Test_util.total_flow with_restart) (Test_util.total_flow without))
    true
    (Test_util.total_flow with_restart < 0.5 *. Test_util.total_flow without)

let suite =
  [
    Alcotest.test_case "driver restart mechanics" `Quick test_driver_restart_mechanics;
    Alcotest.test_case "restart of non-running raises" `Quick test_restart_not_running_raises;
    test_restart_policy_serves_everything ();
    Alcotest.test_case "restart cap respected" `Quick test_restart_cap_respected;
    Alcotest.test_case "restarts help on elephants" `Quick test_restart_helps_on_elephants;
  ]
